//! Distributed spectrum construction (paper Steps II–III).
//!
//! Each rank extracts the k-mers and tiles of its reads into *two* hash
//! tables per spectrum: `hashKmer` for codes it owns
//! (`hash(code) % np == rank`) and `readsKmer` for codes owned elsewhere
//! (`hashTile`/`readsTile` for tiles). An `MPI_Alltoallv` then ships every
//! `readsKmer` entry to its owner, which merges the counts; after the
//! exchange each code lives **only** at its owner with its true global
//! count, and entries below the frequency threshold are pruned.
//!
//! In *batch reads table* mode the exchange runs after every chunk and
//! the reads tables are cleared, bounding their size; an
//! `allreduce(max)` on the batch count keeps every rank participating in
//! the collectives until the slowest rank has drained its reads.
//!
//! # The pipelined builder
//!
//! [`build_distributed`] runs the phase as a pipelined producer/exchanger
//! instead of the one-thread, one-occurrence-at-a-time loop that
//! [`build_distributed_serial`] keeps as the reference:
//!
//! ```text
//!        batch B                    batch B+1                 batch B+2
//!  ┌───────────────────┐      ┌───────────────────┐      ┌──────────────
//!  │ fused extract ×T  │      │ fused extract ×T  │      │ fused extract
//!  │ sort + RLE merge  │      │ sort + RLE merge  │      │ sort + RLE
//!  └───────┬───────────┘      └───────┬───────────┘      └──────┬───────
//!          │ start_alltoallv ─────────┼─── wait/merge           │
//!          └──────────(in flight)─────┘   start_alltoallv ──────┼── wait
//! ```
//!
//! 1. **Sharded extraction** — the batch's reads are split across
//!    `build_threads` workers; each runs one fused scan per read
//!    ([`TileCodec::fused_scan`]) that derives every tile from its two
//!    constituent k-mer codes instead of re-encoding each tile window,
//!    and pushes raw keys into per-thread, per-owner buckets.
//! 2. **Local pre-aggregation** — per owner, the thread buckets are
//!    concatenated, sorted, and run-length merged into distinct
//!    `(key, count)` pairs, so the exchange ships each distinct key once
//!    (exactly the dedup the serial reads tables performed, without the
//!    per-occurrence hash insert).
//! 3. **Double-buffered exchange** — in batch mode the aggregated
//!    buckets go out through the non-blocking
//!    [`Comm::start_alltoallv`]; batch *B*'s exchange stays in flight
//!    while batch *B+1* is extracted, and is drained just before *B+1*'s
//!    buckets are posted. The virtual engine models this window as
//!    `max(compute, comm)` per batch
//!    ([`CostModel::overlapped_rounds_ns`]).
//!
//! Saturating count merges commute, so the pipelined build is
//! bit-identical to the serial reference for every heuristic
//! combination — enforced by the equivalence proptests.
//!
//! [`Comm::start_alltoallv`]: mpisim::Comm::start_alltoallv
//! [`CostModel::overlapped_rounds_ns`]: mpisim::CostModel::overlapped_rounds_ns
//! [`TileCodec::fused_scan`]: dnaseq::TileCodec

use crate::heuristics::HeuristicConfig;
use crate::owner::OwnerMap;
use dnaseq::{Read, TileCodec};
use mpisim::{Comm, PendingAlltoallv};
use reptile::spectrum::{KmerSpectrum, Normalized, TileSpectrum};
use reptile::ReptileParams;
use std::time::Instant;

/// The per-rank spectrum tables after construction.
pub struct RankTables {
    /// Owner map used throughout the run.
    pub owners: OwnerMap,
    /// Owned k-mers with global counts (pruned).
    pub hash_kmers: KmerSpectrum,
    /// Owned tiles with global counts (pruned).
    pub hash_tiles: TileSpectrum,
    /// With `keep_read_tables`: non-owned k-mers from this rank's reads,
    /// with **global** counts (0 = known absent). Counts here are
    /// post-prune global counts, so lookups hit without messaging.
    pub reads_kmers: Option<KmerSpectrum>,
    /// With `keep_read_tables`: non-owned tiles from this rank's reads.
    pub reads_tiles: Option<TileSpectrum>,
    /// With `replicate_kmers`: the full pruned k-mer spectrum.
    pub replicated_kmers: Option<KmerSpectrum>,
    /// With `replicate_tiles`: the full pruned tile spectrum.
    pub replicated_tiles: Option<TileSpectrum>,
    /// With `partial_group > 1`: the merged owned k-mers of this rank's
    /// whole group (the §V partial-replication proposal). Includes this
    /// rank's own entries, so in-group lookups go here first.
    pub group_kmers: Option<KmerSpectrum>,
    /// With `partial_group > 1`: the group's merged owned tiles.
    pub group_tiles: Option<TileSpectrum>,
}

/// Counters from the construction phase (feeds the reports/cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// K-mer occurrences extracted from this rank's reads.
    pub kmers_extracted: u64,
    /// Tile occurrences extracted.
    pub tiles_extracted: u64,
    /// Bases scanned.
    pub bases_processed: u64,
    /// Chunk iterations executed (== global max batches).
    pub batches: u64,
    /// High-water mark of distinct non-owned k-mers buffered before an
    /// exchange, sampled inside the extraction loop (per read in the
    /// serial path, per batch aggregate in the pipelined one) — not just
    /// at batch boundaries, so non-batch peaks cannot under-report.
    pub peak_reads_kmers: u64,
    /// High-water mark of distinct non-owned tiles buffered before an
    /// exchange (same sampling as `peak_reads_kmers`).
    pub peak_reads_tiles: u64,
    /// Owned k-mers after pruning.
    pub owned_kmers: u64,
    /// Owned tiles after pruning.
    pub owned_tiles: u64,
    /// Entries retained in the reads tables (keep_read_tables).
    pub reads_table_entries: u64,
    /// Entries replicated locally (allgather modes).
    pub replicated_entries: u64,
    /// Entries held for the rank's group (partial replication), incl.
    /// the rank's own owned entries.
    pub group_entries: u64,
    /// Measured bytes of every spectrum table resident on this rank
    /// after construction (owned + reads + replicated + group), exact
    /// per [`KmerSpectrum::memory_bytes`].
    pub table_bytes: u64,
    /// Nanoseconds spent extracting and locally aggregating (fused scan,
    /// sort + run-length merge, own-bucket/reads-table merges).
    pub extract_ns: u64,
    /// Nanoseconds blocked on count exchanges (collective wait plus the
    /// owner-side merge of received parts).
    pub exchange_ns: u64,
    /// Nanoseconds during which a count exchange was in flight while
    /// this rank kept computing — the double-buffered overlap window.
    /// Zero in the serial reference path.
    pub overlap_ns: u64,
    /// Distinct `(key, count)` pairs this rank shipped through count
    /// exchanges (post-aggregation volume).
    pub exchange_entries: u64,
    /// Raw k-mer/tile occurrences routed off-rank — what the exchange
    /// volume would have been without pre-aggregation (or the serial
    /// reads-table dedup). `exchange_entries / exchange_occurrences` is
    /// the pre-aggregation compression ratio.
    pub exchange_occurrences: u64,
    /// Bytes shipped through count exchanges (wire-tuple sizes).
    pub exchange_bytes: u64,
}

/// Build the distributed spectra from this rank's reads with the
/// pipelined multi-threaded producer/exchanger (see the module docs).
/// Reads are delivered in chunks of `chunk_size` (the config-file chunk
/// size of Step I); `build_threads ≥ 1` extraction workers shard each
/// chunk. Output is bit-identical to [`build_distributed_serial`].
///
/// `reads` are the reads this rank will *extract from* — already
/// load-balanced if that heuristic is on (the shuffle happens upstream,
/// per batch, in the engines).
pub fn build_distributed(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    build_threads: usize,
) -> (RankTables, BuildStats) {
    params.assert_valid();
    heur.validate().expect("invalid heuristic combination");
    assert!(chunk_size > 0);
    assert!(build_threads > 0, "build_threads must be at least 1");
    let np = comm.size();
    let me = comm.rank();
    let owners = OwnerMap::new(np, params);
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();

    let mut hash_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut hash_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut reads_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut reads_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut stats = BuildStats::default();

    // Every rank must join the same number of collective rounds (§III-B).
    let my_batches = reads.len().div_ceil(chunk_size).max(1) as u64;
    let max_batches =
        if heur.batch_reads { comm.allreduce_max_u64(my_batches) } else { my_batches };
    stats.batches = max_batches;

    let mut pending: Option<PendingExchange<'_>> = None;
    for batch in 0..max_batches {
        let lo = (batch as usize * chunk_size).min(reads.len());
        let hi = ((batch as usize + 1) * chunk_size).min(reads.len());

        let t_extract = Instant::now();
        let mut agg =
            extract_and_aggregate(&reads[lo..hi], build_threads, &owners, &tcodec, me, &mut stats);
        // The own bucket never crosses the wire: merge it locally (this
        // is the pipeline's compute side, like the extraction itself).
        hash_kmers.merge_sorted(&agg.kmers[me]);
        hash_tiles.merge_sorted(&agg.tiles[me]);
        stats.extract_ns += elapsed_ns(t_extract);

        let nonown_kmers: u64 = agg
            .kmers
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != me)
            .map(|(_, b)| b.len() as u64)
            .sum();
        let nonown_tiles: u64 = agg
            .tiles
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != me)
            .map(|(_, b)| b.len() as u64)
            .sum();

        if heur.batch_reads {
            stats.peak_reads_kmers = stats.peak_reads_kmers.max(nonown_kmers);
            stats.peak_reads_tiles = stats.peak_reads_tiles.max(nonown_tiles);
            // Drain batch B-1's exchange only now, after batch B's
            // extraction ran under it — the double buffering.
            if let Some(p) = pending.take() {
                drain_exchange(p, &owners, me, &mut hash_kmers, &mut hash_tiles, &mut stats);
            }
            agg.kmers[me] = Vec::new();
            agg.tiles[me] = Vec::new();
            pending = Some(start_exchange(comm, agg, &mut stats));
        } else {
            // Non-batch mode: accumulate the distinct non-owned keys in
            // the reads tables (they also feed keep_read_tables) and
            // exchange once after the last chunk.
            let t_merge = Instant::now();
            for (d, bucket) in agg.kmers.iter().enumerate() {
                if d != me {
                    reads_kmers.merge_sorted(bucket);
                }
            }
            for (d, bucket) in agg.tiles.iter().enumerate() {
                if d != me {
                    reads_tiles.merge_sorted(bucket);
                }
            }
            stats.extract_ns += elapsed_ns(t_merge);
            stats.peak_reads_kmers = stats.peak_reads_kmers.max(reads_kmers.len() as u64);
            stats.peak_reads_tiles = stats.peak_reads_tiles.max(reads_tiles.len() as u64);
        }
    }
    if let Some(p) = pending.take() {
        drain_exchange(p, &owners, me, &mut hash_kmers, &mut hash_tiles, &mut stats);
    }

    // Record the rank's own-reads key sets before the final exchange
    // consumes the tables (needed by keep_read_tables).
    let (kmer_keys, tile_keys) = if heur.keep_read_tables {
        (
            reads_kmers.iter().map(|(k, _)| k).collect::<Vec<u64>>(),
            reads_tiles.iter().map(|(t, _)| t).collect::<Vec<u128>>(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    if !heur.batch_reads {
        exchange_counts_overlapped(
            comm,
            &owners,
            reads_kmers,
            reads_tiles,
            &mut hash_kmers,
            &mut hash_tiles,
            &mut stats,
        );
    }

    finish_build(comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats)
}

/// The serial reference build: one thread, one hash insert per
/// occurrence, blocking exchanges. Kept verbatim as the semantic
/// baseline the pipelined [`build_distributed`] is proptested against
/// (and as the faithful model of the original Reptile program).
pub fn build_distributed_serial(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
) -> (RankTables, BuildStats) {
    params.assert_valid();
    heur.validate().expect("invalid heuristic combination");
    assert!(chunk_size > 0);
    let np = comm.size();
    let owners = OwnerMap::new(np, params);
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();

    let mut hash_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut hash_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut reads_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut reads_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut stats = BuildStats::default();

    // Every rank must join the same number of collective rounds (§III-B).
    let my_batches = reads.len().div_ceil(chunk_size).max(1) as u64;
    let max_batches =
        if heur.batch_reads { comm.allreduce_max_u64(my_batches) } else { my_batches };
    stats.batches = max_batches;

    let me = comm.rank();
    for batch in 0..max_batches {
        let lo = (batch as usize * chunk_size).min(reads.len());
        let hi = ((batch as usize + 1) * chunk_size).min(reads.len());
        let t_extract = Instant::now();
        for read in &reads[lo..hi] {
            stats.bases_processed += read.len() as u64;
            for (_, code) in kcodec.kmers_of(&read.seq) {
                stats.kmers_extracted += 1;
                let key = owners.kmer_key(code);
                if owners.kmer_owner_at(key) == me {
                    hash_kmers.add_count(key, 1);
                } else {
                    stats.exchange_occurrences += 1;
                    reads_kmers.add_count(key, 1);
                }
            }
            for (_, code) in tcodec.tiles_of(&read.seq) {
                stats.tiles_extracted += 1;
                let key = owners.tile_key(code);
                if owners.tile_owner_at(key) == me {
                    hash_tiles.add_count(key, 1);
                } else {
                    stats.exchange_occurrences += 1;
                    reads_tiles.add_count(key, 1);
                }
            }
            // True high-water sampling: inside the loop, per read.
            stats.peak_reads_kmers = stats.peak_reads_kmers.max(reads_kmers.len() as u64);
            stats.peak_reads_tiles = stats.peak_reads_tiles.max(reads_tiles.len() as u64);
        }
        stats.extract_ns += elapsed_ns(t_extract);
        if heur.batch_reads {
            let t_ex = Instant::now();
            exchange_counts(
                comm,
                &owners,
                std::mem::replace(&mut reads_kmers, KmerSpectrum::new(kcodec, params.canonical)),
                std::mem::replace(&mut reads_tiles, TileSpectrum::new(tcodec, params.canonical)),
                &mut hash_kmers,
                &mut hash_tiles,
                &mut stats,
            );
            stats.exchange_ns += elapsed_ns(t_ex);
        }
    }

    // Record the rank's own-reads key sets before the final exchange
    // consumes the tables (needed by keep_read_tables).
    let (kmer_keys, tile_keys) = if heur.keep_read_tables {
        (
            reads_kmers.iter().map(|(k, _)| k).collect::<Vec<u64>>(),
            reads_tiles.iter().map(|(t, _)| t).collect::<Vec<u128>>(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    if !heur.batch_reads {
        let t_ex = Instant::now();
        exchange_counts(
            comm,
            &owners,
            reads_kmers,
            reads_tiles,
            &mut hash_kmers,
            &mut hash_tiles,
            &mut stats,
        );
        stats.exchange_ns += elapsed_ns(t_ex);
    }

    finish_build(comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats)
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Wire-tuple bytes of a count-exchange payload (what the collective
/// layer charges: `len × size_of::<T>()`).
fn exchange_payload_bytes(kmer_pairs: usize, tile_pairs: usize) -> u64 {
    (kmer_pairs * std::mem::size_of::<(u64, u32)>()
        + tile_pairs * std::mem::size_of::<(u128, u32)>()) as u64
}

/// One batch's extraction output: per-owner, locally pre-aggregated
/// (sorted, distinct) key/count runs.
struct BatchAggregate {
    kmers: Vec<Vec<(u64, u32)>>,
    tiles: Vec<Vec<(u128, u32)>>,
}

/// Per-worker raw output: per-owner occurrence buckets plus counters.
struct WorkerOut {
    kmers: Vec<Vec<u64>>,
    tiles: Vec<Vec<u128>>,
    bases: u64,
    kmers_extracted: u64,
    tiles_extracted: u64,
}

/// One extraction worker: a single fused scan per read, raw keys pushed
/// into per-owner buckets.
fn extract_worker(reads: &[Read], owners: &OwnerMap, tcodec: &TileCodec, np: usize) -> WorkerOut {
    let mut out = WorkerOut {
        kmers: vec![Vec::new(); np],
        tiles: vec![Vec::new(); np],
        bases: 0,
        kmers_extracted: 0,
        tiles_extracted: 0,
    };
    for read in reads {
        out.bases += read.len() as u64;
        for item in tcodec.fused_scan(&read.seq) {
            out.kmers_extracted += 1;
            let key = owners.kmer_key(item.kmer);
            out.kmers[owners.kmer_owner_at(key)].push(key.key());
            if let Some((_, tile)) = item.tile {
                out.tiles_extracted += 1;
                let tkey = owners.tile_key(tile);
                out.tiles[owners.tile_owner_at(tkey)].push(tkey.key());
            }
        }
    }
    out
}

/// Sort a raw occurrence bucket and run-length merge it into distinct
/// `(key, count)` pairs. Saturating like every count merge downstream.
fn run_length_merge<K: Ord + Copy>(mut raw: Vec<K>) -> Vec<(K, u32)> {
    raw.sort_unstable();
    let mut out: Vec<(K, u32)> = Vec::new();
    for key in raw {
        match out.last_mut() {
            Some(last) if last.0 == key => last.1 = last.1.saturating_add(1),
            _ => out.push((key, 1)),
        }
    }
    out
}

/// Extract one batch with `build_threads` workers and pre-aggregate the
/// per-owner buckets.
fn extract_and_aggregate(
    reads: &[Read],
    build_threads: usize,
    owners: &OwnerMap,
    tcodec: &TileCodec,
    me: usize,
    stats: &mut BuildStats,
) -> BatchAggregate {
    let np = owners.np();
    let workers = build_threads.min(reads.len()).max(1);
    let mut raw: Vec<WorkerOut> = if workers == 1 {
        vec![extract_worker(reads, owners, tcodec, np)]
    } else {
        let per_worker = reads.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = reads
                .chunks(per_worker)
                .map(|chunk| scope.spawn(move || extract_worker(chunk, owners, tcodec, np)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("extraction worker panicked")).collect()
        })
    };
    for w in &raw {
        stats.bases_processed += w.bases;
        stats.kmers_extracted += w.kmers_extracted;
        stats.tiles_extracted += w.tiles_extracted;
        for (d, bucket) in w.kmers.iter().enumerate() {
            if d != me {
                stats.exchange_occurrences += bucket.len() as u64;
            }
        }
        for (d, bucket) in w.tiles.iter().enumerate() {
            if d != me {
                stats.exchange_occurrences += bucket.len() as u64;
            }
        }
    }
    let mut kmers = Vec::with_capacity(np);
    let mut tiles = Vec::with_capacity(np);
    for d in 0..np {
        let total: usize = raw.iter().map(|w| w.kmers[d].len()).sum();
        let mut bucket = Vec::with_capacity(total);
        for w in &mut raw {
            bucket.append(&mut w.kmers[d]);
        }
        kmers.push(run_length_merge(bucket));
        let total: usize = raw.iter().map(|w| w.tiles[d].len()).sum();
        let mut bucket = Vec::with_capacity(total);
        for w in &mut raw {
            bucket.append(&mut w.tiles[d]);
        }
        tiles.push(run_length_merge(bucket));
    }
    BatchAggregate { kmers, tiles }
}

/// An in-flight batch exchange (both spectra) plus its start time, from
/// which the overlap window is measured at drain.
struct PendingExchange<'c> {
    kmers: PendingAlltoallv<'c, (u64, u32)>,
    tiles: PendingAlltoallv<'c, (u128, u32)>,
    started: Instant,
}

/// Post one batch's non-owned buckets through the non-blocking exchange.
fn start_exchange<'c>(
    comm: &'c Comm,
    agg: BatchAggregate,
    stats: &mut BuildStats,
) -> PendingExchange<'c> {
    let kmer_pairs: usize = agg.kmers.iter().map(Vec::len).sum();
    let tile_pairs: usize = agg.tiles.iter().map(Vec::len).sum();
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
    let kmers = comm.start_alltoallv(agg.kmers);
    let tiles = comm.start_alltoallv(agg.tiles);
    PendingExchange { kmers, tiles, started: Instant::now() }
}

/// Wait out an in-flight exchange and merge the received sorted runs
/// into the owner tables.
fn drain_exchange(
    p: PendingExchange<'_>,
    owners: &OwnerMap,
    me: usize,
    hash_kmers: &mut KmerSpectrum,
    hash_tiles: &mut TileSpectrum,
    stats: &mut BuildStats,
) {
    stats.overlap_ns += elapsed_ns(p.started);
    let t_wait = Instant::now();
    for part in p.kmers.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.kmer_owner_at(Normalized::assume(code)) == me));
        hash_kmers.merge_sorted(&part);
    }
    for part in p.tiles.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.tile_owner_at(Normalized::assume(code)) == me));
        hash_tiles.merge_sorted(&part);
    }
    stats.exchange_ns += elapsed_ns(t_wait);
}

/// The Step III exchange: ship `reads_*` entries to their owners and merge
/// into the owners' hash tables (blocking, serial reference path). Also
/// reused verbatim by the snapshot re-shard load: entries from an
/// old-`np` snapshot are disjoint across shards, so routing them through
/// this exchange re-owns every key with its exact global count.
pub(crate) fn exchange_counts(
    comm: &Comm,
    owners: &OwnerMap,
    reads_kmers: KmerSpectrum,
    reads_tiles: TileSpectrum,
    hash_kmers: &mut KmerSpectrum,
    hash_tiles: &mut TileSpectrum,
    stats: &mut BuildStats,
) {
    let np = comm.size();
    // Counting pass first, so every per-owner bucket is allocated once at
    // its exact final size instead of growing by push-reallocation.
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in reads_kmers.iter() {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut kmer_out: Vec<Vec<(u64, u32)>> =
        kmer_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_kmers.into_entries() {
        kmer_out[owners.kmer_owner_at(Normalized::assume(code))].push((code, count));
    }
    let kmer_pairs: usize = kmer_out.iter().map(Vec::len).sum();
    for part in comm.alltoallv(kmer_out) {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.kmer_owner_at(key), comm.rank());
            hash_kmers.add_count(key, count);
        }
    }
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in reads_tiles.iter() {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_out: Vec<Vec<(u128, u32)>> =
        tile_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_tiles.into_entries() {
        tile_out[owners.tile_owner_at(Normalized::assume(code))].push((code, count));
    }
    let tile_pairs: usize = tile_out.iter().map(Vec::len).sum();
    for part in comm.alltoallv(tile_out) {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.tile_owner_at(key), comm.rank());
            hash_tiles.add_count(key, count);
        }
    }
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
}

/// The pipelined path's final (non-batch) exchange: same volume as
/// [`exchange_counts`], but the k-mer round goes out non-blocking so the
/// tile bucketing runs under it.
fn exchange_counts_overlapped(
    comm: &Comm,
    owners: &OwnerMap,
    reads_kmers: KmerSpectrum,
    reads_tiles: TileSpectrum,
    hash_kmers: &mut KmerSpectrum,
    hash_tiles: &mut TileSpectrum,
    stats: &mut BuildStats,
) {
    let np = comm.size();
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in reads_kmers.iter() {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut kmer_out: Vec<Vec<(u64, u32)>> =
        kmer_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_kmers.into_entries() {
        kmer_out[owners.kmer_owner_at(Normalized::assume(code))].push((code, count));
    }
    let kmer_pairs: usize = kmer_out.iter().map(Vec::len).sum();
    let pending_k = comm.start_alltoallv(kmer_out);
    let overlap_start = Instant::now();

    // Tile bucketing overlaps the in-flight k-mer round.
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in reads_tiles.iter() {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_out: Vec<Vec<(u128, u32)>> =
        tile_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_tiles.into_entries() {
        tile_out[owners.tile_owner_at(Normalized::assume(code))].push((code, count));
    }
    let tile_pairs: usize = tile_out.iter().map(Vec::len).sum();
    let pending_t = comm.start_alltoallv(tile_out);
    stats.overlap_ns += elapsed_ns(overlap_start);

    let t_wait = Instant::now();
    for part in pending_k.wait() {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.kmer_owner_at(key), comm.rank());
            hash_kmers.add_count(key, count);
        }
    }
    for part in pending_t.wait() {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.tile_owner_at(key), comm.rank());
            hash_tiles.add_count(key, count);
        }
    }
    stats.exchange_ns += elapsed_ns(t_wait);
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
}

/// Everything after the count exchange, shared by both build paths:
/// threshold prune, then the heuristic-table derivation.
#[allow(clippy::too_many_arguments)]
fn finish_build(
    comm: &Comm,
    owners: OwnerMap,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    mut hash_kmers: KmerSpectrum,
    mut hash_tiles: TileSpectrum,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    stats: BuildStats,
) -> (RankTables, BuildStats) {
    // Threshold prune at the owner (Step III).
    hash_kmers.prune(params.kmer_threshold);
    hash_tiles.prune(params.tile_threshold);
    derive_heuristic_tables(
        comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats,
    )
}

/// The collective tail of construction: keep_read_tables resolution,
/// replication / partial replication, and the final stats. Split from
/// [`finish_build`] so the snapshot load path — whose owned tables come
/// off disk already pruned — can derive the heuristic tables without
/// repeating Steps II–III. Every rank must call this together: it runs
/// alltoallv/allgatherv rounds for the heuristics that need them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn derive_heuristic_tables(
    comm: &Comm,
    owners: OwnerMap,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    hash_kmers: KmerSpectrum,
    hash_tiles: TileSpectrum,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    mut stats: BuildStats,
) -> (RankTables, BuildStats) {
    stats.owned_kmers = hash_kmers.len() as u64;
    stats.owned_tiles = hash_tiles.len() as u64;

    // --- keep_read_tables: resolve global counts for own-reads keys ---
    let (final_reads_kmers, final_reads_tiles) = if heur.keep_read_tables {
        let (rk, rt) = resolve_read_tables(
            comm,
            &owners,
            params,
            kmer_keys,
            tile_keys,
            &hash_kmers,
            &hash_tiles,
        );
        stats.reads_table_entries = (rk.len() + rt.len()) as u64;
        (Some(rk), Some(rt))
    } else {
        (None, None)
    };

    // --- replication heuristics: allgather the pruned spectra ---
    let replicated_kmers = if heur.replicate_kmers {
        let entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let mut full = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        merge_gathered_parts(&mut full, comm.allgatherv(entries), |_| true);
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };
    let replicated_tiles = if heur.replicate_tiles {
        let entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let mut full = TileSpectrum::new(params.tile_codec(), params.canonical);
        merge_gathered_parts(&mut full, comm.allgatherv(entries), |_| true);
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };

    // --- partial replication (§V): gather the group's owned spectra ---
    let (group_kmers, group_tiles) = if heur.partial_group > 1 {
        let g = heur.partial_group;
        let my_group = comm.rank() / g;
        let k_entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let mut gk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        merge_gathered_parts(&mut gk, comm.allgatherv(k_entries), |code| {
            owners.kmer_owner_at(Normalized::assume(code)) / g == my_group
        });
        let t_entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let mut gt = TileSpectrum::new(params.tile_codec(), params.canonical);
        merge_gathered_parts(&mut gt, comm.allgatherv(t_entries), |code| {
            owners.tile_owner_at(Normalized::assume(code)) / g == my_group
        });
        stats.group_entries = (gk.len() + gt.len()) as u64;
        (Some(gk), Some(gt))
    } else {
        (None, None)
    };

    let tables = RankTables {
        owners,
        hash_kmers,
        hash_tiles,
        reads_kmers: final_reads_kmers,
        reads_tiles: final_reads_tiles,
        replicated_kmers,
        replicated_tiles,
        group_kmers,
        group_tiles,
    };
    stats.table_bytes = tables.memory_bytes();
    (tables, stats)
}

/// Key-type-generic view of a spectrum for [`merge_gathered_parts`].
trait CountSpectrum<K> {
    fn reserve_entries(&mut self, additional: usize);
    fn add_entry(&mut self, key: K, count: u32);
}

impl CountSpectrum<u64> for KmerSpectrum {
    fn reserve_entries(&mut self, additional: usize) {
        self.reserve(additional);
    }
    fn add_entry(&mut self, key: u64, count: u32) {
        self.add_count(Normalized::assume(key), count);
    }
}

impl CountSpectrum<u128> for TileSpectrum {
    fn reserve_entries(&mut self, additional: usize) {
        self.reserve(additional);
    }
    fn add_entry(&mut self, key: u128, count: u32) {
        self.add_count(Normalized::assume(key), count);
    }
}

/// Merge allgathered per-owner spectrum parts into `spec`, keeping only
/// entries matching `keep`. Owners hold disjoint key sets, so the
/// filtered part lengths sum to the exact final entry count — the table
/// is pre-sized once instead of growing through every `add_count`, and
/// the final geometry still matches `bytes_for_entries`.
fn merge_gathered_parts<K: Copy, S: CountSpectrum<K>>(
    spec: &mut S,
    parts: Vec<Vec<(K, u32)>>,
    keep: impl Fn(K) -> bool,
) {
    let matching = parts.iter().flatten().filter(|&&(key, _)| keep(key)).count();
    spec.reserve_entries(matching);
    for (key, count) in parts.into_iter().flatten() {
        if keep(key) {
            spec.add_entry(key, count);
        }
    }
}

/// The extra alltoallv round of the *read k-mers/tiles* heuristic: ask
/// each owner for the global (post-prune) counts of the keys this rank
/// saw in its own reads, and build local tables from the answers. A count
/// of 0 is stored too — "known absent" avoids a pointless future message.
fn resolve_read_tables(
    comm: &Comm,
    owners: &OwnerMap,
    params: &ReptileParams,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    hash_kmers: &KmerSpectrum,
    hash_tiles: &TileSpectrum,
) -> (KmerSpectrum, TileSpectrum) {
    let np = comm.size();
    // k-mers: request codes, answer (code, count) pairs. The keys came
    // out of the reads tables, so they are normalized by construction —
    // raw owner/count lookups skip re-canonicalizing every one, and a
    // counting pass sizes each per-owner bucket exactly once.
    let mut ask_sizes = vec![0usize; np];
    for &code in &kmer_keys {
        ask_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut ask: Vec<Vec<u64>> = ask_sizes.into_iter().map(Vec::with_capacity).collect();
    for code in kmer_keys {
        ask[owners.kmer_owner_at(Normalized::assume(code))].push(code);
    }
    let questions = comm.alltoallv(ask);
    let answers: Vec<Vec<(u64, u32)>> = questions
        .into_iter()
        .map(|codes| {
            codes.into_iter().map(|c| (c, hash_kmers.count_at(Normalized::assume(c)))).collect()
        })
        .collect();
    let mut rk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    // Answer parts are disjoint (each key was asked of exactly one
    // owner), so their lengths sum to the exact final entry count.
    merge_gathered_parts(&mut rk, comm.alltoallv(answers), |_| true);
    // tiles
    let mut ask_sizes_t = vec![0usize; np];
    for &code in &tile_keys {
        ask_sizes_t[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut ask_t: Vec<Vec<u128>> = ask_sizes_t.into_iter().map(Vec::with_capacity).collect();
    for code in tile_keys {
        ask_t[owners.tile_owner_at(Normalized::assume(code))].push(code);
    }
    let questions_t = comm.alltoallv(ask_t);
    let answers_t: Vec<Vec<(u128, u32)>> = questions_t
        .into_iter()
        .map(|codes| {
            codes.into_iter().map(|c| (c, hash_tiles.count_at(Normalized::assume(c)))).collect()
        })
        .collect();
    let mut rt = TileSpectrum::new(params.tile_codec(), params.canonical);
    merge_gathered_parts(&mut rt, comm.alltoallv(answers_t), |_| true);
    (rk, rt)
}

/// One local pass over `reads` collecting the distinct non-owned
/// normalized keys — what the build path's reads tables would have held.
/// The snapshot load path needs these for `keep_read_tables` (the build
/// that would have recorded them was skipped), and a plain scan is far
/// cheaper than replaying the count exchange: counts are already global
/// in the loaded tables, only the key *sets* are missing.
pub(crate) fn scan_nonowned_keys(
    reads: &[Read],
    params: &ReptileParams,
    owners: &OwnerMap,
    me: usize,
) -> (Vec<u64>, Vec<u128>) {
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();
    let mut kmers: dnaseq::FxHashSet<u64> = dnaseq::FxHashSet::default();
    let mut tiles: dnaseq::FxHashSet<u128> = dnaseq::FxHashSet::default();
    for read in reads {
        for (_, code) in kcodec.kmers_of(&read.seq) {
            let key = owners.kmer_key(code);
            if owners.kmer_owner_at(key) != me {
                kmers.insert(key.key());
            }
        }
        for (_, code) in tcodec.tiles_of(&read.seq) {
            let key = owners.tile_key(code);
            if owners.tile_owner_at(key) != me {
                tiles.insert(key.key());
            }
        }
    }
    (kmers.into_iter().collect(), tiles.into_iter().collect())
}

impl RankTables {
    /// Total spectrum entries resident on this rank (memory model input).
    /// Group tables subsume the rank's own entries, so when present they
    /// replace `hash_kmers` in the tally rather than double-counting.
    pub fn resident_kmer_entries(&self) -> u64 {
        let own = match &self.group_kmers {
            Some(g) => g.len() as u64,
            None => self.hash_kmers.len() as u64,
        };
        own + self.reads_kmers.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_kmers.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Total tile entries resident on this rank.
    pub fn resident_tile_entries(&self) -> u64 {
        let own = match &self.group_tiles {
            Some(g) => g.len() as u64,
            None => self.hash_tiles.len() as u64,
        };
        own + self.reads_tiles.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_tiles.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Measured bytes of **every** spectrum table resident on this rank
    /// (owned, reads, replicated, and group — unlike the entry tallies
    /// above, group tables do not replace the owned ones here, because
    /// both really are in memory). Exact: flat-table slot arrays plus
    /// headers.
    pub fn memory_bytes(&self) -> u64 {
        let k = self.hash_kmers.memory_bytes()
            + self.reads_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_kmers.as_ref().map_or(0, |s| s.memory_bytes());
        let t = self.hash_tiles.memory_bytes()
            + self.reads_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_tiles.as_ref().map_or(0, |s| s.memory_bytes());
        (k + t) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use reptile::spectrum::LocalSpectra;

    fn params() -> ReptileParams {
        ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    fn make_reads(n: usize, len: usize) -> Vec<Read> {
        // deterministic reads: groups of 3 copies of a distinct template,
        // so counts pass the threshold (2) while different chunks still
        // contribute different k-mers
        let mut reads = Vec::new();
        for i in 0..n {
            let template = i / 3;
            let seed = dnaseq::mix64(template as u64 + 1);
            let seq: Vec<u8> = (0..len)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize])
                .collect();
            reads.push(Read::new(i as u64 + 1, seq, vec![30; len]));
        }
        reads
    }

    fn partition(reads: &[Read], np: usize, rank: usize) -> Vec<Read> {
        reads.iter().enumerate().filter(|(i, _)| i % np == rank).map(|(_, r)| r.clone()).collect()
    }

    /// Distributed tables must equal the sequential spectra: every code at
    /// exactly its owner, global counts, same pruning.
    fn check_equivalence(np: usize, heur: HeuristicConfig, chunk: usize, threads: usize) {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, chunk, &params(), &heur, threads)
        });
        // union of owned tables == sequential spectrum
        let mut union_k = dnaseq::FxHashMap::default();
        let mut union_t = dnaseq::FxHashMap::default();
        for (tables, _) in &results {
            for (code, count) in tables.hash_kmers.iter() {
                assert_eq!(tables.owners.kmer_owner(code), tables_rank(&results, tables));
                assert!(union_k.insert(code, count).is_none(), "kmer at two owners");
            }
            for (code, count) in tables.hash_tiles.iter() {
                assert!(union_t.insert(code, count).is_none(), "tile at two owners");
            }
        }
        let seq_k: dnaseq::FxHashMap<_, _> = seq.kmers.iter().collect();
        let seq_t: dnaseq::FxHashMap<_, _> = seq.tiles.iter().collect();
        assert_eq!(union_k, seq_k, "np={np} heur={}", heur.label());
        assert_eq!(union_t, seq_t, "np={np} heur={}", heur.label());
    }

    fn tables_rank(results: &[(RankTables, BuildStats)], needle: &RankTables) -> usize {
        results.iter().position(|(t, _)| std::ptr::eq(t, needle)).expect("tables belong to results")
    }

    /// `BuildStats` minus its wall-clock fields — the deterministic
    /// counters the serial and pipelined paths must agree on exactly.
    pub(crate) fn deterministic_counters(stats: &BuildStats) -> BuildStats {
        BuildStats { extract_ns: 0, exchange_ns: 0, overlap_ns: 0, ..*stats }
    }

    #[test]
    fn matches_sequential_base_mode() {
        for np in [1, 2, 4, 7] {
            check_equivalence(np, HeuristicConfig::base(), 1000, 2);
        }
    }

    #[test]
    fn matches_sequential_batch_mode() {
        for threads in [1, 3] {
            check_equivalence(
                4,
                HeuristicConfig { batch_reads: true, ..Default::default() },
                3,
                threads,
            );
        }
    }

    #[test]
    fn pipelined_matches_serial_reference_exactly() {
        // Spot check of the proptest invariant: identical tables AND
        // identical deterministic counters (incl. exchange volumes and
        // peaks) between the serial path and the pipelined one.
        let p = params();
        let reads = make_reads(42, 18);
        let reads_ref = &reads;
        let np = 3;
        for heur in [
            HeuristicConfig::base(),
            HeuristicConfig { batch_reads: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, ..Default::default() },
        ] {
            let serial = Universe::new(np).run(move |comm| {
                let mine = partition(reads_ref, np, comm.rank());
                build_distributed_serial(comm, &mine, 4, &p, &heur)
            });
            for threads in [1, 4] {
                let piped = Universe::new(np).run(move |comm| {
                    let mine = partition(reads_ref, np, comm.rank());
                    build_distributed(comm, &mine, 4, &p, &heur, threads)
                });
                for ((ts, ss), (tp, sp)) in serial.iter().zip(&piped) {
                    assert_eq!(
                        deterministic_counters(ss),
                        deterministic_counters(sp),
                        "stats diverge: threads={threads} heur={}",
                        heur.label()
                    );
                    let sk: Vec<_> = sorted(ts.hash_kmers.iter());
                    let pk: Vec<_> = sorted(tp.hash_kmers.iter());
                    assert_eq!(sk, pk, "kmer tables diverge");
                    let st: Vec<_> = sorted(ts.hash_tiles.iter());
                    let pt: Vec<_> = sorted(tp.hash_tiles.iter());
                    assert_eq!(st, pt, "tile tables diverge");
                    assert_eq!(ts.memory_bytes(), tp.memory_bytes(), "table geometry diverges");
                }
            }
        }
    }

    fn sorted<K: Ord + Copy, I: Iterator<Item = (K, u32)>>(it: I) -> Vec<(K, u32)> {
        let mut v: Vec<(K, u32)> = it.collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    #[test]
    fn batch_mode_bounds_reads_tables() {
        let p = params();
        let reads = make_reads(60, 18);
        let reads_ref = &reads;
        let np = 4;
        let batched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
            build_distributed(comm, &mine, 2, &p, &heur, 2).1
        });
        let unbatched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 2, &p, &HeuristicConfig::base(), 2).1
        });
        for (b, u) in batched.iter().zip(&unbatched) {
            assert!(
                b.peak_reads_kmers <= u.peak_reads_kmers,
                "batching must not grow the reads table ({} vs {})",
                b.peak_reads_kmers,
                u.peak_reads_kmers
            );
            assert!(b.batches >= u.batches);
        }
        // and strictly smaller for at least one rank (many batches)
        assert!(
            batched.iter().zip(&unbatched).any(|(b, u)| b.peak_reads_kmers < u.peak_reads_kmers),
            "batch mode should shrink peak reads tables somewhere"
        );
    }

    #[test]
    fn preaggregation_shrinks_exchange_volume() {
        // Repeated templates mean many duplicate occurrences per batch;
        // the shipped entries must be the distinct keys only.
        let p = params();
        let reads = make_reads(60, 18);
        let reads_ref = &reads;
        let np = 4;
        let stats = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
            build_distributed(comm, &mine, 30, &p, &heur, 2).1
        });
        for s in &stats {
            assert!(s.exchange_entries > 0, "multi-rank build must exchange something");
            assert!(
                s.exchange_entries < s.exchange_occurrences,
                "pre-aggregation must dedup ({} entries vs {} occurrences)",
                s.exchange_entries,
                s.exchange_occurrences
            );
            assert!(s.exchange_bytes > 0);
        }
    }

    #[test]
    fn keep_read_tables_resolves_global_counts() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 4;
        let heur = HeuristicConfig { keep_read_tables: true, ..Default::default() };
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur, 2)
        });
        for (tables, stats) in &results {
            let rk = tables.reads_kmers.as_ref().expect("reads table kept");
            assert!(stats.reads_table_entries > 0 || rk.is_empty());
            for (code, count) in rk.iter() {
                assert_eq!(count, seq.kmers.count(code), "global count mismatch for {code}");
            }
            let rt = tables.reads_tiles.as_ref().expect("tile reads table kept");
            for (code, count) in rt.iter() {
                assert_eq!(count, seq.tiles.count(code));
            }
        }
    }

    #[test]
    fn replication_builds_full_spectra() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 3;
        let heur = HeuristicConfig::replicate_both();
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur, 2)
        });
        for (tables, _) in &results {
            let rep_k = tables.replicated_kmers.as_ref().unwrap();
            let rep_t = tables.replicated_tiles.as_ref().unwrap();
            assert_eq!(rep_k.len(), seq.kmers.len());
            assert_eq!(rep_t.len(), seq.tiles.len());
            for (code, count) in seq.kmers.iter() {
                assert_eq!(rep_k.count(code), count);
            }
            // satellite check: the pre-sized replicated table keeps the
            // exact bytes_for_entries geometry
            assert_eq!(
                rep_k.memory_bytes(),
                reptile::spectrum::KmerSpectrum::bytes_for_entries(rep_k.len())
            );
        }
    }

    #[test]
    fn owned_counts_roughly_uniform() {
        // The Fig 3 property: per-rank k-mer counts spread within a few
        // percent (here looser: random small dataset).
        let p = params();
        let reads = make_reads(200, 30);
        let reads_ref = &reads;
        let np = 8;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &HeuristicConfig::base(), 2).1
        });
        let counts: Vec<u64> = results.iter().map(|s| s.owned_kmers).collect();
        let total: u64 = counts.iter().sum();
        assert!(total > 0);
        // no rank should be empty while others are loaded (hash spread)
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 4 * min.max(1) + 8, "wildly uneven: {counts:?}");
    }
}
