//! Distributed spectrum construction (paper Steps II–III).
//!
//! Each rank extracts the k-mers and tiles of its reads into *two* hash
//! tables per spectrum: `hashKmer` for codes it owns
//! (`hash(code) % np == rank`) and `readsKmer` for codes owned elsewhere
//! (`hashTile`/`readsTile` for tiles). An `MPI_Alltoallv` then ships every
//! `readsKmer` entry to its owner, which merges the counts; after the
//! exchange each code lives **only** at its owner with its true global
//! count, and entries below the frequency threshold are pruned.
//!
//! In *batch reads table* mode the exchange runs after every chunk and
//! the reads tables are cleared, bounding their size; an
//! `allreduce(max)` on the batch count keeps every rank participating in
//! the collectives until the slowest rank has drained its reads.
//!
//! # The pipelined builder
//!
//! [`build_distributed`] runs the phase as a pipelined producer/exchanger
//! instead of the one-thread, one-occurrence-at-a-time loop that
//! [`build_distributed_serial`] keeps as the reference:
//!
//! ```text
//!        batch B                    batch B+1                 batch B+2
//!  ┌───────────────────┐      ┌───────────────────┐      ┌──────────────
//!  │ fused extract ×T  │      │ fused extract ×T  │      │ fused extract
//!  │ radix + RLE merge │      │ radix + RLE merge │      │ radix + RLE
//!  └───────┬───────────┘      └───────┬───────────┘      └──────┬───────
//!          │ start_alltoallv ─────────┼─── wait/merge           │
//!          └──────────(in flight)─────┘   start_alltoallv ──────┼── wait
//! ```
//!
//! 1. **Sharded extraction** — the batch's reads are split across a
//!    *persistent pool* of `build_threads` workers (spawned once per
//!    build, fed read ranges over channels, output buffers recycled);
//!    each runs one batched fused scan per read
//!    ([`TileCodec::fused_scan_into`]) — SWAR/SIMD base classification
//!    plus an incrementally rolled k-mer/tile code — and pushes raw keys
//!    into per-thread, per-owner buckets. A single-rank build skips the
//!    owner hash entirely.
//! 2. **Adaptive pre-aggregation** — non-owned occurrence buckets are
//!    folded per batch into sorted distinct `(key, count)` runs by the
//!    cheapest exact strategy for the key width (the `counts` module:
//!    direct counting arrays for narrow keys, partition-and-count for
//!    mid widths, LSD radix sort + run-length encoding for wide ones),
//!    so the exchange ships each distinct key once — exactly the dedup
//!    the serial reads tables performed, without the per-occurrence
//!    hash insert.
//! 3. **Deferred tally materialization** — the running global tallies
//!    are the same width-adaptive accumulators: raw own-bucket
//!    occurrences and exchanged runs accumulate with no per-key hash
//!    probe at all and are folded once, after the last exchange, into
//!    sorted distinct entries (saturating adds commute, so any fold
//!    order is bit-identical to per-occurrence inserts); the Step III
//!    threshold prune runs as a sweep over the entry runs, and the
//!    flat tables are materialized survivors-only with an exact
//!    reserve and one monotone bulk load (no full-size table, no prune
//!    rebuild, no incremental growth rehashes at all).
//! 4. **Double-buffered exchange** — in batch mode the aggregated
//!    buckets go out through the non-blocking
//!    [`Comm::start_alltoallv`]; batch *B*'s exchange stays in flight
//!    while batch *B+1* is extracted, and is drained just before *B+1*'s
//!    buckets are posted. The virtual engine models this window as
//!    `max(compute, comm)` per batch
//!    ([`CostModel::overlapped_rounds_ns`]).
//!
//! Saturating count merges commute, so the pipelined build is
//! bit-identical to the serial reference for every heuristic
//! combination — enforced by the equivalence proptests.
//!
//! [`Comm::start_alltoallv`]: mpisim::Comm::start_alltoallv
//! [`CostModel::overlapped_rounds_ns`]: mpisim::CostModel::overlapped_rounds_ns
//! [`TileCodec::fused_scan_into`]: dnaseq::TileCodec::fused_scan_into

use crate::counts::{aggregate_occurrences, CountAcc};
use crate::heuristics::HeuristicConfig;
use crate::ooc::OocBuild;
use crate::owner::OwnerMap;
use dnaseq::{FusedScratch, Read, TileCodec};
use mpisim::{Comm, PendingAlltoallv};
use reptile::spectrum::{KmerSpectrum, Normalized, TileSpectrum};
use reptile::ReptileParams;
use specstore::spill::SpillError;
use std::sync::mpsc;
use std::time::Instant;

/// The per-rank spectrum tables after construction.
pub struct RankTables {
    /// Owner map used throughout the run.
    pub owners: OwnerMap,
    /// Owned k-mers with global counts (pruned).
    pub hash_kmers: KmerSpectrum,
    /// Owned tiles with global counts (pruned).
    pub hash_tiles: TileSpectrum,
    /// With `keep_read_tables`: non-owned k-mers from this rank's reads,
    /// with **global** counts (0 = known absent). Counts here are
    /// post-prune global counts, so lookups hit without messaging.
    pub reads_kmers: Option<KmerSpectrum>,
    /// With `keep_read_tables`: non-owned tiles from this rank's reads.
    pub reads_tiles: Option<TileSpectrum>,
    /// With `replicate_kmers`: the full pruned k-mer spectrum.
    pub replicated_kmers: Option<KmerSpectrum>,
    /// With `replicate_tiles`: the full pruned tile spectrum.
    pub replicated_tiles: Option<TileSpectrum>,
    /// With `partial_group > 1`: the merged owned k-mers of this rank's
    /// whole group (the §V partial-replication proposal). Includes this
    /// rank's own entries, so in-group lookups go here first.
    pub group_kmers: Option<KmerSpectrum>,
    /// With `partial_group > 1`: the group's merged owned tiles.
    pub group_tiles: Option<TileSpectrum>,
    /// With `hot_shard_k > 0`: replicas of the *hot* owners' pruned
    /// k-mer spectra (adaptive balancing; exact copies, global counts).
    pub hot_kmers: Option<KmerSpectrum>,
    /// With `hot_shard_k > 0`: replicas of the hot owners' tiles.
    pub hot_tiles: Option<TileSpectrum>,
    /// Which owner ranks are replicated in the hot tables (length `np`;
    /// empty when hot-shard replication is off or found no skew). All
    /// ranks agree on this vector — it routes lookups to the replica.
    pub hot_owners: Vec<bool>,
}

/// Counters from the construction phase (feeds the reports/cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// K-mer occurrences extracted from this rank's reads.
    pub kmers_extracted: u64,
    /// Tile occurrences extracted.
    pub tiles_extracted: u64,
    /// Bases scanned.
    pub bases_processed: u64,
    /// Chunk iterations executed (== global max batches).
    pub batches: u64,
    /// High-water mark of distinct non-owned k-mers buffered before an
    /// exchange, sampled inside the extraction loop (per read in the
    /// serial path, per batch aggregate in the pipelined one) — not just
    /// at batch boundaries, so non-batch peaks cannot under-report.
    pub peak_reads_kmers: u64,
    /// High-water mark of distinct non-owned tiles buffered before an
    /// exchange (same sampling as `peak_reads_kmers`).
    pub peak_reads_tiles: u64,
    /// Owned k-mers after pruning.
    pub owned_kmers: u64,
    /// Owned tiles after pruning.
    pub owned_tiles: u64,
    /// Entries retained in the reads tables (keep_read_tables).
    pub reads_table_entries: u64,
    /// Entries replicated locally (allgather modes).
    pub replicated_entries: u64,
    /// Entries held for the rank's group (partial replication), incl.
    /// the rank's own owned entries.
    pub group_entries: u64,
    /// Entries copied into the hot-shard replicas (adaptive balancing;
    /// 0 when `hot_shard_k` is 0 or no owner tripped the skew gate).
    pub hot_entries: u64,
    /// Measured bytes of every spectrum table resident on this rank
    /// after construction (owned + reads + replicated + group), exact
    /// per [`KmerSpectrum::memory_bytes`].
    pub table_bytes: u64,
    /// Nanoseconds spent extracting and locally aggregating (fused scan,
    /// sort + run-length merge, own-bucket/reads-table merges).
    pub extract_ns: u64,
    /// Nanoseconds blocked on count exchanges (collective wait plus the
    /// owner-side merge of received parts).
    pub exchange_ns: u64,
    /// Nanoseconds during which a count exchange was in flight while
    /// this rank kept computing — the double-buffered overlap window.
    /// Zero in the serial reference path.
    pub overlap_ns: u64,
    /// Distinct `(key, count)` pairs this rank shipped through count
    /// exchanges (post-aggregation volume).
    pub exchange_entries: u64,
    /// Raw k-mer/tile occurrences routed off-rank — what the exchange
    /// volume would have been without pre-aggregation (or the serial
    /// reads-table dedup). `exchange_entries / exchange_occurrences` is
    /// the pre-aggregation compression ratio.
    pub exchange_occurrences: u64,
    /// Bytes shipped through count exchanges (wire-tuple sizes).
    pub exchange_bytes: u64,
    /// Sorted spill runs this rank wrote (0 unless a memory budget is
    /// set and the accumulators tripped it).
    pub spill_runs: u64,
    /// Bytes of spill run files written (headers + bodies).
    pub spill_bytes: u64,
    /// Nanoseconds spent in the final table materialization — the
    /// k-way run merge (both passes) in a budgeted build, the
    /// finalize/prune/merge-sorted block otherwise charged to
    /// `extract_ns` alone.
    pub merge_ns: u64,
    /// High-water mark of the out-of-core build's accounted bytes
    /// (direct arrays + spill buffers + accumulators + merge scratch +
    /// growing tables). 0 for unbudgeted builds; ≤ the configured
    /// budget otherwise (`ooc_bench` gates this).
    pub ooc_peak_bytes: u64,
}

/// Build the distributed spectra from this rank's reads with the
/// pipelined multi-threaded producer/exchanger (see the module docs).
/// Reads are delivered in chunks of `chunk_size` (the config-file chunk
/// size of Step I); `build_threads ≥ 1` extraction workers shard each
/// chunk. Output is bit-identical to [`build_distributed_serial`].
///
/// `reads` are the reads this rank will *extract from* — already
/// load-balanced if that heuristic is on (the shuffle happens upstream,
/// per batch, in the engines).
pub fn build_distributed(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    build_threads: usize,
) -> (RankTables, BuildStats) {
    build_distributed_spillable(comm, reads, chunk_size, params, heur, build_threads, None)
        .expect("unbudgeted build cannot spill")
}

/// [`build_distributed`] with an optional out-of-core spill state: when
/// `ooc` is `Some`, the count accumulators are drained to sorted run
/// files whenever they trip the memory budget and the final tables are
/// materialized by a k-way run merge instead of an in-memory
/// finalize — bit-identical output, bounded peak memory (see
/// [`crate::ooc`]). With `ooc == None` this *is* the in-memory build
/// and can never return `Err`.
pub(crate) fn build_distributed_spillable(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    build_threads: usize,
    mut ooc: Option<&mut OocBuild>,
) -> Result<(RankTables, BuildStats), SpillError> {
    params.assert_valid();
    heur.validate().expect("invalid heuristic combination");
    assert!(chunk_size > 0);
    assert!(build_threads > 0, "build_threads must be at least 1");
    let np = comm.size();
    let me = comm.rank();
    let owners = OwnerMap::new(np, params);
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();

    // The persistent worker pool lives for the whole build: one scope,
    // `build_threads − 1` workers spawned once and fed read ranges over
    // channels batch after batch (the main thread is the remaining
    // worker), instead of a spawn/join per batch.
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<WorkerOut>();
        let mut job_txs: Vec<mpsc::Sender<Job<'_>>> = Vec::new();
        for _ in 1..build_threads {
            let (tx, rx) = mpsc::channel::<Job<'_>>();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let mut scratch = FusedScratch::default();
                while let Ok(Job { reads, mut out }) = rx.recv() {
                    extract_worker(reads, &owners, &tcodec, &mut out, &mut scratch);
                    if res_tx.send(out).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(tx);
        }
        let mut pool =
            ExtractPool { job_txs, res_rx, free: Vec::new(), scratch: FusedScratch::default() };
        let kbits = 2 * kcodec.k() as u32;
        let tbits = 2 * tcodec.len() as u32;

        // Running global tallies as width-adaptive count accumulators
        // (module docs step 3): raw own occurrences and exchanged runs
        // accumulate without a per-key hash probe; the flat tables are
        // materialized once, after the loop, from the finalized runs.
        let mut acc_kmers: CountAcc<u64> = CountAcc::new(kbits);
        let mut acc_tiles: CountAcc<u128> = CountAcc::new(tbits);
        let mut acc_reads_kmers: CountAcc<u64> = CountAcc::new(kbits);
        let mut acc_reads_tiles: CountAcc<u128> = CountAcc::new(tbits);
        let mut stats = BuildStats::default();

        // Every rank must join the same number of collective rounds
        // (§III-B).
        let my_batches = reads.len().div_ceil(chunk_size).max(1) as u64;
        let max_batches =
            if heur.batch_reads { comm.allreduce_max_u64(my_batches) } else { my_batches };
        stats.batches = max_batches;

        let mut pending: Option<PendingExchange<'_>> = None;
        for batch in 0..max_batches {
            let lo = (batch as usize * chunk_size).min(reads.len());
            let hi = ((batch as usize + 1) * chunk_size).min(reads.len());

            let t_extract = Instant::now();
            let raw = pool.extract(&reads[lo..hi], &owners, &tcodec, me, &mut stats);
            // The own buckets never cross the wire: tally their raw
            // occurrences straight into the accumulators (this is the
            // pipeline's compute side, like the extraction itself).
            // Budgeted builds absorb in bounded sub-chunks with a spill
            // check after each — without direct arrays every own key
            // lands in the raw buffers, so a whole batch of unchecked
            // pushes can blow past the trigger (same discipline as
            // drain_exchange).
            for w in &raw {
                match ooc.as_deref_mut() {
                    Some(o) => {
                        for sub in w.kmers[me].chunks(crate::ooc::ABSORB_CHUNK_ENTRIES) {
                            acc_kmers.push_keys(sub);
                            o.maybe_spill(&mut acc_kmers, &mut acc_tiles);
                        }
                        for sub in w.tiles[me].chunks(crate::ooc::ABSORB_CHUNK_ENTRIES) {
                            acc_tiles.push_keys(sub);
                            o.maybe_spill(&mut acc_kmers, &mut acc_tiles);
                        }
                    }
                    None => {
                        acc_kmers.push_keys(&w.kmers[me]);
                        acc_tiles.push_keys(&w.tiles[me]);
                    }
                }
            }

            if heur.batch_reads {
                // Pre-aggregate this batch's non-owned buckets for the
                // wire (each distinct key ships once, module docs
                // step 2).
                let agg = aggregate_nonown(&raw, me, kbits, tbits);
                pool.recycle(raw);
                stats.extract_ns += elapsed_ns(t_extract);
                let nonown_kmers: u64 = agg.kmers.iter().map(|b| b.len() as u64).sum();
                let nonown_tiles: u64 = agg.tiles.iter().map(|b| b.len() as u64).sum();
                stats.peak_reads_kmers = stats.peak_reads_kmers.max(nonown_kmers);
                stats.peak_reads_tiles = stats.peak_reads_tiles.max(nonown_tiles);
                // Drain batch B-1's exchange only now, after batch B's
                // extraction ran under it — the double buffering.
                if let Some(p) = pending.take() {
                    drain_exchange(
                        p,
                        &owners,
                        me,
                        &mut acc_kmers,
                        &mut acc_tiles,
                        &mut stats,
                        ooc.as_deref_mut(),
                    );
                }
                pending = Some(start_exchange(comm, agg, &mut stats));
            } else {
                // Non-batch mode: tally the raw non-owned occurrences in
                // the reads accumulators (they also feed
                // keep_read_tables) and exchange once after the last
                // chunk.
                for w in &raw {
                    for (d, bucket) in w.kmers.iter().enumerate() {
                        if d != me {
                            acc_reads_kmers.push_keys(bucket);
                        }
                    }
                    for (d, bucket) in w.tiles.iter().enumerate() {
                        if d != me {
                            acc_reads_tiles.push_keys(bucket);
                        }
                    }
                }
                pool.recycle(raw);
                stats.extract_ns += elapsed_ns(t_extract);
            }
            // Budgeted builds re-check at the batch boundary too (the
            // exchange drain already checks per absorbed sub-chunk;
            // spill failures are deferred either way — the loop's
            // collective schedule must stay uniform across ranks).
            if let Some(o) = ooc.as_deref_mut() {
                o.maybe_spill(&mut acc_kmers, &mut acc_tiles);
            }
        }
        if let Some(p) = pending.take() {
            drain_exchange(
                p,
                &owners,
                me,
                &mut acc_kmers,
                &mut acc_tiles,
                &mut stats,
                ooc.as_deref_mut(),
            );
        }

        // Finalize the reads tallies (non-batch mode only — batch mode
        // never feeds them). The serial reads tables only ever grow
        // between exchanges, so their true high-water mark *is* the
        // final distinct count — assigning the peak here samples exactly
        // what the serial path's per-read max converged to.
        let (reads_kmer_entries, reads_tile_entries) = if heur.batch_reads {
            (Vec::new(), Vec::new())
        } else {
            let t_fin = Instant::now();
            let rk = acc_reads_kmers.finalize();
            let rt = acc_reads_tiles.finalize();
            stats.extract_ns += elapsed_ns(t_fin);
            stats.peak_reads_kmers = rk.len() as u64;
            stats.peak_reads_tiles = rt.len() as u64;
            (rk, rt)
        };

        // Record the rank's own-reads key sets before the final exchange
        // consumes the runs (needed by keep_read_tables).
        let (kmer_keys, tile_keys) = if heur.keep_read_tables {
            (
                reads_kmer_entries.iter().map(|&(k, _)| k).collect::<Vec<u64>>(),
                reads_tile_entries.iter().map(|&(t, _)| t).collect::<Vec<u128>>(),
            )
        } else {
            (Vec::new(), Vec::new())
        };

        if !heur.batch_reads {
            exchange_counts_overlapped(
                comm,
                &owners,
                reads_kmer_entries,
                reads_tile_entries,
                &mut acc_kmers,
                &mut acc_tiles,
                &mut stats,
            );
        }

        // Step III's threshold prune runs on the *entry runs*, before
        // any table exists: a sweep over the finalized vector keeps the
        // same survivor set the serial path's build-then-prune keeps,
        // and the flat tables are then materialized once, survivors
        // only, with an exact reserve and one monotone bulk load — no
        // full-size table, no prune rebuild, no incremental growth
        // rehash. `capacity_for(survivors)` is the same either way, so
        // the final geometry (and `memory_bytes`) matches the serial
        // path exactly.
        let t_build = Instant::now();
        let (hash_kmers, hash_tiles) = match ooc {
            Some(o) => {
                // Budgeted materialization: spill the tails, k-way-merge
                // the runs straight into the tables (crate::ooc docs).
                // Resolve outcomes collectively before touching another
                // collective — a rank whose spill plane failed (deferred
                // batch-loop IO error or a corrupt run at merge time)
                // must abort *with* its peers, not deadlock them in
                // `derive_heuristic_tables` (same discipline as the
                // snapshot layer's gather_failures).
                let local = o.finish_spectra(&mut acc_kmers, &mut acc_tiles, params, &mut stats);
                let failed: u64 = comm
                    .allgatherv(vec![local.is_err() as u64])
                    .iter()
                    .map(|flags| flags.first().copied().unwrap_or(0))
                    .sum();
                match local {
                    Err(e) => return Err(e),
                    Ok(_) if failed > 0 => {
                        return Err(SpillError::PeerFailure { failed_ranks: failed })
                    }
                    Ok(spectra) => spectra,
                }
            }
            None => {
                let mut kmer_entries = acc_kmers.finalize();
                kmer_entries.retain(|&(_, c)| c >= params.kmer_threshold);
                let mut tile_entries = acc_tiles.finalize();
                tile_entries.retain(|&(_, c)| c >= params.tile_threshold);
                let mut hash_kmers = KmerSpectrum::new(kcodec, params.canonical);
                hash_kmers.reserve(kmer_entries.len());
                hash_kmers.merge_sorted(&kmer_entries);
                drop(kmer_entries);
                let mut hash_tiles = TileSpectrum::new(tcodec, params.canonical);
                hash_tiles.reserve(tile_entries.len());
                hash_tiles.merge_sorted(&tile_entries);
                drop(tile_entries);
                (hash_kmers, hash_tiles)
            }
        };
        stats.extract_ns += elapsed_ns(t_build);

        // Already pruned above — go straight to the heuristic tables.
        Ok(derive_heuristic_tables(
            comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats,
        ))
        // The pool's job senders drop here, ending every worker's recv
        // loop before the scope joins them.
    })
}

/// The serial reference build: one thread, one hash insert per
/// occurrence, blocking exchanges. Kept verbatim as the semantic
/// baseline the pipelined [`build_distributed`] is proptested against
/// (and as the faithful model of the original Reptile program).
pub fn build_distributed_serial(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
) -> (RankTables, BuildStats) {
    params.assert_valid();
    heur.validate().expect("invalid heuristic combination");
    assert!(chunk_size > 0);
    let np = comm.size();
    let owners = OwnerMap::new(np, params);
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();

    let mut hash_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut hash_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut reads_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut reads_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut stats = BuildStats::default();

    // Every rank must join the same number of collective rounds (§III-B).
    let my_batches = reads.len().div_ceil(chunk_size).max(1) as u64;
    let max_batches =
        if heur.batch_reads { comm.allreduce_max_u64(my_batches) } else { my_batches };
    stats.batches = max_batches;

    let me = comm.rank();
    for batch in 0..max_batches {
        let lo = (batch as usize * chunk_size).min(reads.len());
        let hi = ((batch as usize + 1) * chunk_size).min(reads.len());
        let t_extract = Instant::now();
        for read in &reads[lo..hi] {
            stats.bases_processed += read.len() as u64;
            for (_, code) in kcodec.kmers_of(&read.seq) {
                stats.kmers_extracted += 1;
                let key = owners.kmer_key(code);
                if owners.kmer_owner_at(key) == me {
                    hash_kmers.add_count(key, 1);
                } else {
                    stats.exchange_occurrences += 1;
                    reads_kmers.add_count(key, 1);
                }
            }
            for (_, code) in tcodec.tiles_of(&read.seq) {
                stats.tiles_extracted += 1;
                let key = owners.tile_key(code);
                if owners.tile_owner_at(key) == me {
                    hash_tiles.add_count(key, 1);
                } else {
                    stats.exchange_occurrences += 1;
                    reads_tiles.add_count(key, 1);
                }
            }
            // True high-water sampling: inside the loop, per read.
            stats.peak_reads_kmers = stats.peak_reads_kmers.max(reads_kmers.len() as u64);
            stats.peak_reads_tiles = stats.peak_reads_tiles.max(reads_tiles.len() as u64);
        }
        stats.extract_ns += elapsed_ns(t_extract);
        if heur.batch_reads {
            let t_ex = Instant::now();
            exchange_counts(
                comm,
                &owners,
                std::mem::replace(&mut reads_kmers, KmerSpectrum::new(kcodec, params.canonical)),
                std::mem::replace(&mut reads_tiles, TileSpectrum::new(tcodec, params.canonical)),
                &mut hash_kmers,
                &mut hash_tiles,
                &mut stats,
            );
            stats.exchange_ns += elapsed_ns(t_ex);
        }
    }

    // Record the rank's own-reads key sets before the final exchange
    // consumes the tables (needed by keep_read_tables).
    let (kmer_keys, tile_keys) = if heur.keep_read_tables {
        (
            reads_kmers.iter().map(|(k, _)| k).collect::<Vec<u64>>(),
            reads_tiles.iter().map(|(t, _)| t).collect::<Vec<u128>>(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    if !heur.batch_reads {
        let t_ex = Instant::now();
        exchange_counts(
            comm,
            &owners,
            reads_kmers,
            reads_tiles,
            &mut hash_kmers,
            &mut hash_tiles,
            &mut stats,
        );
        stats.exchange_ns += elapsed_ns(t_ex);
    }

    finish_build(comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats)
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Wire-tuple bytes of a count-exchange payload (what the collective
/// layer charges: `len × size_of::<T>()`).
fn exchange_payload_bytes(kmer_pairs: usize, tile_pairs: usize) -> u64 {
    (kmer_pairs * std::mem::size_of::<(u64, u32)>()
        + tile_pairs * std::mem::size_of::<(u128, u32)>()) as u64
}

/// One batch's extraction output: per-owner, locally pre-aggregated
/// (sorted, distinct) key/count runs.
struct BatchAggregate {
    kmers: Vec<Vec<(u64, u32)>>,
    tiles: Vec<Vec<(u128, u32)>>,
}

/// Per-worker raw output: per-owner occurrence buckets plus counters.
/// Recycled through the pool's free list, so bucket capacity is paid
/// once and reused batch after batch.
struct WorkerOut {
    kmers: Vec<Vec<u64>>,
    tiles: Vec<Vec<u128>>,
    bases: u64,
    kmers_extracted: u64,
    tiles_extracted: u64,
}

impl WorkerOut {
    fn new(np: usize) -> WorkerOut {
        WorkerOut {
            kmers: vec![Vec::new(); np],
            tiles: vec![Vec::new(); np],
            bases: 0,
            kmers_extracted: 0,
            tiles_extracted: 0,
        }
    }

    /// Reset for reuse, keeping every bucket's allocation.
    fn clear(&mut self) {
        for b in &mut self.kmers {
            b.clear();
        }
        for b in &mut self.tiles {
            b.clear();
        }
        self.bases = 0;
        self.kmers_extracted = 0;
        self.tiles_extracted = 0;
    }
}

/// One unit of pool work: a read range to extract into a recycled
/// output buffer.
struct Job<'r> {
    reads: &'r [Read],
    out: WorkerOut,
}

/// One extraction worker: a single batched fused scan per read
/// ([`TileCodec::fused_scan_into`] — SWAR/SIMD classification plus an
/// incrementally rolled k-mer/tile code), raw keys pushed into per-owner
/// buckets. With a single rank the owner hash is skipped entirely:
/// rank 0 owns every key.
fn extract_worker(
    reads: &[Read],
    owners: &OwnerMap,
    tcodec: &TileCodec,
    out: &mut WorkerOut,
    scratch: &mut FusedScratch,
) {
    let mut bases = 0u64;
    let mut kmers_extracted = 0u64;
    let mut tiles_extracted = 0u64;
    if owners.np() == 1 {
        let kb = &mut out.kmers[0];
        let tb = &mut out.tiles[0];
        for read in reads {
            bases += read.len() as u64;
            tcodec.fused_scan_into(&read.seq, scratch, |item| {
                kmers_extracted += 1;
                kb.push(owners.kmer_key(item.kmer).key());
                if let Some((_, tile)) = item.tile {
                    tiles_extracted += 1;
                    tb.push(owners.tile_key(tile).key());
                }
            });
        }
    } else {
        for read in reads {
            bases += read.len() as u64;
            tcodec.fused_scan_into(&read.seq, scratch, |item| {
                kmers_extracted += 1;
                let key = owners.kmer_key(item.kmer);
                out.kmers[owners.kmer_owner_at(key)].push(key.key());
                if let Some((_, tile)) = item.tile {
                    tiles_extracted += 1;
                    let tkey = owners.tile_key(tile);
                    out.tiles[owners.tile_owner_at(tkey)].push(tkey.key());
                }
            });
        }
    }
    out.bases += bases;
    out.kmers_extracted += kmers_extracted;
    out.tiles_extracted += tiles_extracted;
}

/// Pre-aggregate one batch's non-owned occurrence buckets into sorted
/// distinct per-owner runs for the wire (`me`'s bucket stays empty —
/// own occurrences were tallied straight into the accumulators).
fn aggregate_nonown(raw: &[WorkerOut], me: usize, kbits: u32, tbits: u32) -> BatchAggregate {
    let np = raw.first().map_or(1, |w| w.kmers.len());
    let mut kmers = Vec::with_capacity(np);
    let mut tiles = Vec::with_capacity(np);
    for d in 0..np {
        if d == me {
            kmers.push(Vec::new());
            tiles.push(Vec::new());
            continue;
        }
        kmers.push(aggregate_occurrences(raw.iter().map(|w| &w.kmers[d]), kbits));
        tiles.push(aggregate_occurrences(raw.iter().map(|w| &w.tiles[d]), tbits));
    }
    BatchAggregate { kmers, tiles }
}

/// The persistent extraction pool: job/result channels to the workers
/// spawned once by [`build_distributed`], plus recycled output buffers.
struct ExtractPool<'r> {
    job_txs: Vec<mpsc::Sender<Job<'r>>>,
    res_rx: mpsc::Receiver<WorkerOut>,
    free: Vec<WorkerOut>,
    /// The main thread's own fused-scan scratch (it always takes the
    /// first share of each batch).
    scratch: FusedScratch,
}

impl<'r> ExtractPool<'r> {
    fn take_buffer(&mut self, np: usize) -> WorkerOut {
        self.free.pop().unwrap_or_else(|| WorkerOut::new(np))
    }

    /// Extract one batch across the pool, returning the raw per-worker,
    /// per-owner occurrence buckets (recycle them with
    /// [`ExtractPool::recycle`] once tallied).
    fn extract(
        &mut self,
        reads: &'r [Read],
        owners: &OwnerMap,
        tcodec: &TileCodec,
        me: usize,
        stats: &mut BuildStats,
    ) -> Vec<WorkerOut> {
        let np = owners.np();
        let workers = (self.job_txs.len() + 1).min(reads.len()).max(1);
        let per = reads.len().div_ceil(workers).max(1);
        // Shares after the first go to the pool; the main thread (always
        // a worker itself) takes the first inline.
        let mut outstanding = 0usize;
        for (w, chunk) in reads.chunks(per).enumerate().skip(1) {
            let out = self.take_buffer(np);
            self.job_txs[w - 1].send(Job { reads: chunk, out }).expect("pool worker alive");
            outstanding += 1;
        }
        let mut main_out = self.take_buffer(np);
        extract_worker(
            reads.chunks(per).next().unwrap_or(&[]),
            owners,
            tcodec,
            &mut main_out,
            &mut self.scratch,
        );
        let mut raw: Vec<WorkerOut> = Vec::with_capacity(outstanding + 1);
        raw.push(main_out);
        for _ in 0..outstanding {
            raw.push(self.res_rx.recv().expect("pool worker result"));
        }

        for w in &raw {
            stats.bases_processed += w.bases;
            stats.kmers_extracted += w.kmers_extracted;
            stats.tiles_extracted += w.tiles_extracted;
            for (d, bucket) in w.kmers.iter().enumerate() {
                if d != me {
                    stats.exchange_occurrences += bucket.len() as u64;
                }
            }
            for (d, bucket) in w.tiles.iter().enumerate() {
                if d != me {
                    stats.exchange_occurrences += bucket.len() as u64;
                }
            }
        }
        raw
    }

    /// Return a batch's output buffers to the free list (allocations
    /// kept, contents cleared).
    fn recycle(&mut self, raw: Vec<WorkerOut>) {
        for mut w in raw {
            w.clear();
            self.free.push(w);
        }
    }
}

/// An in-flight batch exchange (both spectra) plus its start time, from
/// which the overlap window is measured at drain.
struct PendingExchange<'c> {
    kmers: PendingAlltoallv<'c, (u64, u32)>,
    tiles: PendingAlltoallv<'c, (u128, u32)>,
    started: Instant,
}

/// Post one batch's non-owned buckets through the non-blocking exchange.
fn start_exchange<'c>(
    comm: &'c Comm,
    agg: BatchAggregate,
    stats: &mut BuildStats,
) -> PendingExchange<'c> {
    let kmer_pairs: usize = agg.kmers.iter().map(Vec::len).sum();
    let tile_pairs: usize = agg.tiles.iter().map(Vec::len).sum();
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
    let kmers = comm.start_alltoallv(agg.kmers);
    let tiles = comm.start_alltoallv(agg.tiles);
    PendingExchange { kmers, tiles, started: Instant::now() }
}

/// Wait out an in-flight exchange and merge the received runs into the
/// owner tallies.
fn drain_exchange(
    p: PendingExchange<'_>,
    owners: &OwnerMap,
    me: usize,
    acc_kmers: &mut CountAcc<u64>,
    acc_tiles: &mut CountAcc<u128>,
    stats: &mut BuildStats,
    mut ooc: Option<&mut OocBuild>,
) {
    stats.overlap_ns += elapsed_ns(p.started);
    let t_wait = Instant::now();
    // Budgeted builds absorb in bounded sub-chunks with a spill check
    // after each, so pending bytes never outrun the trigger by more
    // than one chunk — a whole exchange part can be far larger than the
    // budget headroom at the floor (crate::ooc trigger arithmetic).
    for part in p.kmers.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.kmer_owner_at(Normalized::assume(code)) == me));
        match ooc.as_deref_mut() {
            Some(o) => {
                for sub in part.chunks(crate::ooc::ABSORB_CHUNK_ENTRIES) {
                    acc_kmers.push_run(sub);
                    o.maybe_spill(acc_kmers, acc_tiles);
                }
            }
            None => acc_kmers.push_run(&part),
        }
    }
    for part in p.tiles.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.tile_owner_at(Normalized::assume(code)) == me));
        match ooc.as_deref_mut() {
            Some(o) => {
                for sub in part.chunks(crate::ooc::ABSORB_CHUNK_ENTRIES) {
                    acc_tiles.push_run(sub);
                    o.maybe_spill(acc_kmers, acc_tiles);
                }
            }
            None => acc_tiles.push_run(&part),
        }
    }
    stats.exchange_ns += elapsed_ns(t_wait);
}

/// The Step III exchange: ship `reads_*` entries to their owners and merge
/// into the owners' hash tables (blocking, serial reference path). Also
/// reused verbatim by the snapshot re-shard load: entries from an
/// old-`np` snapshot are disjoint across shards, so routing them through
/// this exchange re-owns every key with its exact global count.
pub(crate) fn exchange_counts(
    comm: &Comm,
    owners: &OwnerMap,
    reads_kmers: KmerSpectrum,
    reads_tiles: TileSpectrum,
    hash_kmers: &mut KmerSpectrum,
    hash_tiles: &mut TileSpectrum,
    stats: &mut BuildStats,
) {
    let np = comm.size();
    // Counting pass first, so every per-owner bucket is allocated once at
    // its exact final size instead of growing by push-reallocation.
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in reads_kmers.iter() {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut kmer_out: Vec<Vec<(u64, u32)>> =
        kmer_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_kmers.into_entries() {
        kmer_out[owners.kmer_owner_at(Normalized::assume(code))].push((code, count));
    }
    let kmer_pairs: usize = kmer_out.iter().map(Vec::len).sum();
    for part in comm.alltoallv(kmer_out) {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.kmer_owner_at(key), comm.rank());
            hash_kmers.add_count(key, count);
        }
    }
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in reads_tiles.iter() {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_out: Vec<Vec<(u128, u32)>> =
        tile_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_tiles.into_entries() {
        tile_out[owners.tile_owner_at(Normalized::assume(code))].push((code, count));
    }
    let tile_pairs: usize = tile_out.iter().map(Vec::len).sum();
    for part in comm.alltoallv(tile_out) {
        for (code, count) in part {
            let key = Normalized::assume(code);
            debug_assert_eq!(owners.tile_owner_at(key), comm.rank());
            hash_tiles.add_count(key, count);
        }
    }
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
}

/// The pipelined path's final (non-batch) exchange: same volume as
/// [`exchange_counts`], but operating on the finalized reads runs —
/// received parts fold into the owner accumulators instead of
/// hash-probing per key — and the k-mer round goes out non-blocking so
/// the tile bucketing runs under it.
fn exchange_counts_overlapped(
    comm: &Comm,
    owners: &OwnerMap,
    reads_kmers: Vec<(u64, u32)>,
    reads_tiles: Vec<(u128, u32)>,
    acc_kmers: &mut CountAcc<u64>,
    acc_tiles: &mut CountAcc<u128>,
    stats: &mut BuildStats,
) {
    let np = comm.size();
    let mut kmer_sizes = vec![0usize; np];
    for &(code, _) in &reads_kmers {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut kmer_out: Vec<Vec<(u64, u32)>> =
        kmer_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_kmers {
        kmer_out[owners.kmer_owner_at(Normalized::assume(code))].push((code, count));
    }
    let kmer_pairs: usize = kmer_out.iter().map(Vec::len).sum();
    let pending_k = comm.start_alltoallv(kmer_out);
    let overlap_start = Instant::now();

    // Tile bucketing overlaps the in-flight k-mer round.
    let mut tile_sizes = vec![0usize; np];
    for &(code, _) in &reads_tiles {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_out: Vec<Vec<(u128, u32)>> =
        tile_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_tiles {
        tile_out[owners.tile_owner_at(Normalized::assume(code))].push((code, count));
    }
    let tile_pairs: usize = tile_out.iter().map(Vec::len).sum();
    let pending_t = comm.start_alltoallv(tile_out);
    stats.overlap_ns += elapsed_ns(overlap_start);

    let t_wait = Instant::now();
    for part in pending_k.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.kmer_owner_at(Normalized::assume(code)) == comm.rank()));
        acc_kmers.push_run(&part);
    }
    for part in pending_t.wait() {
        debug_assert!(part
            .iter()
            .all(|&(code, _)| owners.tile_owner_at(Normalized::assume(code)) == comm.rank()));
        acc_tiles.push_run(&part);
    }
    stats.exchange_ns += elapsed_ns(t_wait);
    stats.exchange_entries += (kmer_pairs + tile_pairs) as u64;
    stats.exchange_bytes += exchange_payload_bytes(kmer_pairs, tile_pairs);
}

/// Everything after the count exchange on the serial reference path:
/// threshold prune of the full tables, then the heuristic-table
/// derivation. (The pipelined path prunes its entry runs before any
/// table exists and calls [`derive_heuristic_tables`] directly.)
#[allow(clippy::too_many_arguments)]
fn finish_build(
    comm: &Comm,
    owners: OwnerMap,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    mut hash_kmers: KmerSpectrum,
    mut hash_tiles: TileSpectrum,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    stats: BuildStats,
) -> (RankTables, BuildStats) {
    // Threshold prune at the owner (Step III).
    hash_kmers.prune(params.kmer_threshold);
    hash_tiles.prune(params.tile_threshold);
    derive_heuristic_tables(
        comm, owners, params, heur, hash_kmers, hash_tiles, kmer_keys, tile_keys, stats,
    )
}

/// The collective tail of construction: keep_read_tables resolution,
/// replication / partial replication, and the final stats. Split from
/// [`finish_build`] so the snapshot load path — whose owned tables come
/// off disk already pruned — can derive the heuristic tables without
/// repeating Steps II–III. Every rank must call this together: it runs
/// alltoallv/allgatherv rounds for the heuristics that need them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn derive_heuristic_tables(
    comm: &Comm,
    owners: OwnerMap,
    params: &ReptileParams,
    heur: &HeuristicConfig,
    hash_kmers: KmerSpectrum,
    hash_tiles: TileSpectrum,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    mut stats: BuildStats,
) -> (RankTables, BuildStats) {
    stats.owned_kmers = hash_kmers.len() as u64;
    stats.owned_tiles = hash_tiles.len() as u64;

    // --- keep_read_tables: resolve global counts for own-reads keys ---
    let (final_reads_kmers, final_reads_tiles) = if heur.keep_read_tables {
        let (rk, rt) = resolve_read_tables(
            comm,
            &owners,
            params,
            kmer_keys,
            tile_keys,
            &hash_kmers,
            &hash_tiles,
        );
        stats.reads_table_entries = (rk.len() + rt.len()) as u64;
        (Some(rk), Some(rt))
    } else {
        (None, None)
    };

    // --- replication heuristics: allgather the pruned spectra ---
    let replicated_kmers = if heur.replicate_kmers {
        let entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let mut full = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        merge_gathered_parts(&mut full, comm.allgatherv(entries), |_| true);
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };
    let replicated_tiles = if heur.replicate_tiles {
        let entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let mut full = TileSpectrum::new(params.tile_codec(), params.canonical);
        merge_gathered_parts(&mut full, comm.allgatherv(entries), |_| true);
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };

    // --- partial replication (§V): gather the group's owned spectra ---
    let (group_kmers, group_tiles) = if heur.partial_group > 1 {
        let g = heur.partial_group;
        let my_group = comm.rank() / g;
        let k_entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let mut gk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        merge_gathered_parts(&mut gk, comm.allgatherv(k_entries), |code| {
            owners.kmer_owner_at(Normalized::assume(code)) / g == my_group
        });
        let t_entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let mut gt = TileSpectrum::new(params.tile_codec(), params.canonical);
        merge_gathered_parts(&mut gt, comm.allgatherv(t_entries), |code| {
            owners.tile_owner_at(Normalized::assume(code)) / g == my_group
        });
        stats.group_entries = (gk.len() + gt.len()) as u64;
        (Some(gk), Some(gt))
    } else {
        (None, None)
    };

    let tables = RankTables {
        owners,
        hash_kmers,
        hash_tiles,
        reads_kmers: final_reads_kmers,
        reads_tiles: final_reads_tiles,
        replicated_kmers,
        replicated_tiles,
        group_kmers,
        group_tiles,
        hot_kmers: None,
        hot_tiles: None,
        hot_owners: Vec::new(),
    };
    stats.table_bytes = tables.memory_bytes();
    (tables, stats)
}

/// Adaptive balancing: replicate the **hot** owners' pruned spectra to
/// every rank. `hot` flags the owner ranks to copy (length `np`,
/// identical on every rank — it comes out of the allgathered
/// owner-volume histogram, see `balance::select_hot_owners`). Collective:
/// every rank must call this together; cold owners contribute empty
/// parts so the allgather rounds stay uniform. The replicas are exact
/// copies of the hot owners' post-prune tables, so a replica hit returns
/// byte-for-byte the count a remote request would have.
///
/// Refreshes `stats.table_bytes` (the replicas are resident memory) and
/// records the copied entry count in `stats.hot_entries`.
pub(crate) fn replicate_hot_shards(
    comm: &Comm,
    params: &ReptileParams,
    tables: &mut RankTables,
    hot: &[bool],
    stats: &mut BuildStats,
) {
    let i_am_hot = hot[comm.rank()];
    let k_entries: Vec<(u64, u32)> =
        if i_am_hot { tables.hash_kmers.iter().collect() } else { Vec::new() };
    let mut hk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    merge_gathered_parts(&mut hk, comm.allgatherv(k_entries), |_| true);
    let t_entries: Vec<(u128, u32)> =
        if i_am_hot { tables.hash_tiles.iter().collect() } else { Vec::new() };
    let mut ht = TileSpectrum::new(params.tile_codec(), params.canonical);
    merge_gathered_parts(&mut ht, comm.allgatherv(t_entries), |_| true);
    stats.hot_entries = (hk.len() + ht.len()) as u64;
    tables.hot_kmers = Some(hk);
    tables.hot_tiles = Some(ht);
    tables.hot_owners = hot.to_vec();
    stats.table_bytes = tables.memory_bytes();
}

/// Key-type-generic view of a spectrum for [`merge_gathered_parts`].
trait CountSpectrum<K> {
    fn reserve_entries(&mut self, additional: usize);
    fn add_entry(&mut self, key: K, count: u32);
}

impl CountSpectrum<u64> for KmerSpectrum {
    fn reserve_entries(&mut self, additional: usize) {
        self.reserve(additional);
    }
    fn add_entry(&mut self, key: u64, count: u32) {
        self.add_count(Normalized::assume(key), count);
    }
}

impl CountSpectrum<u128> for TileSpectrum {
    fn reserve_entries(&mut self, additional: usize) {
        self.reserve(additional);
    }
    fn add_entry(&mut self, key: u128, count: u32) {
        self.add_count(Normalized::assume(key), count);
    }
}

/// Merge allgathered per-owner spectrum parts into `spec`, keeping only
/// entries matching `keep`. Owners hold disjoint key sets, so the
/// filtered part lengths sum to the exact final entry count — the table
/// is pre-sized once instead of growing through every `add_count`, and
/// the final geometry still matches `bytes_for_entries`.
fn merge_gathered_parts<K: Copy, S: CountSpectrum<K>>(
    spec: &mut S,
    parts: Vec<Vec<(K, u32)>>,
    keep: impl Fn(K) -> bool,
) {
    let matching = parts.iter().flatten().filter(|&&(key, _)| keep(key)).count();
    spec.reserve_entries(matching);
    for (key, count) in parts.into_iter().flatten() {
        if keep(key) {
            spec.add_entry(key, count);
        }
    }
}

/// The extra alltoallv round of the *read k-mers/tiles* heuristic: ask
/// each owner for the global (post-prune) counts of the keys this rank
/// saw in its own reads, and build local tables from the answers. A count
/// of 0 is stored too — "known absent" avoids a pointless future message.
fn resolve_read_tables(
    comm: &Comm,
    owners: &OwnerMap,
    params: &ReptileParams,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    hash_kmers: &KmerSpectrum,
    hash_tiles: &TileSpectrum,
) -> (KmerSpectrum, TileSpectrum) {
    let np = comm.size();
    // k-mers: request codes, answer (code, count) pairs. The keys came
    // out of the reads tables, so they are normalized by construction —
    // raw owner/count lookups skip re-canonicalizing every one, and a
    // counting pass sizes each per-owner bucket exactly once.
    let mut ask_sizes = vec![0usize; np];
    for &code in &kmer_keys {
        ask_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut ask: Vec<Vec<u64>> = ask_sizes.into_iter().map(Vec::with_capacity).collect();
    for code in kmer_keys {
        ask[owners.kmer_owner_at(Normalized::assume(code))].push(code);
    }
    let questions = comm.alltoallv(ask);
    let answers: Vec<Vec<(u64, u32)>> = questions
        .into_iter()
        .map(|codes| {
            codes.into_iter().map(|c| (c, hash_kmers.count_at(Normalized::assume(c)))).collect()
        })
        .collect();
    let mut rk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    // Answer parts are disjoint (each key was asked of exactly one
    // owner), so their lengths sum to the exact final entry count.
    merge_gathered_parts(&mut rk, comm.alltoallv(answers), |_| true);
    // tiles
    let mut ask_sizes_t = vec![0usize; np];
    for &code in &tile_keys {
        ask_sizes_t[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut ask_t: Vec<Vec<u128>> = ask_sizes_t.into_iter().map(Vec::with_capacity).collect();
    for code in tile_keys {
        ask_t[owners.tile_owner_at(Normalized::assume(code))].push(code);
    }
    let questions_t = comm.alltoallv(ask_t);
    let answers_t: Vec<Vec<(u128, u32)>> = questions_t
        .into_iter()
        .map(|codes| {
            codes.into_iter().map(|c| (c, hash_tiles.count_at(Normalized::assume(c)))).collect()
        })
        .collect();
    let mut rt = TileSpectrum::new(params.tile_codec(), params.canonical);
    merge_gathered_parts(&mut rt, comm.alltoallv(answers_t), |_| true);
    (rk, rt)
}

/// One local pass over `reads` collecting the distinct non-owned
/// normalized keys — what the build path's reads tables would have held.
/// The snapshot load path needs these for `keep_read_tables` (the build
/// that would have recorded them was skipped), and a plain scan is far
/// cheaper than replaying the count exchange: counts are already global
/// in the loaded tables, only the key *sets* are missing.
pub(crate) fn scan_nonowned_keys(
    reads: &[Read],
    params: &ReptileParams,
    owners: &OwnerMap,
    me: usize,
) -> (Vec<u64>, Vec<u128>) {
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();
    let mut kmers: dnaseq::FxHashSet<u64> = dnaseq::FxHashSet::default();
    let mut tiles: dnaseq::FxHashSet<u128> = dnaseq::FxHashSet::default();
    for read in reads {
        for (_, code) in kcodec.kmers_of(&read.seq) {
            let key = owners.kmer_key(code);
            if owners.kmer_owner_at(key) != me {
                kmers.insert(key.key());
            }
        }
        for (_, code) in tcodec.tiles_of(&read.seq) {
            let key = owners.tile_key(code);
            if owners.tile_owner_at(key) != me {
                tiles.insert(key.key());
            }
        }
    }
    (kmers.into_iter().collect(), tiles.into_iter().collect())
}

impl RankTables {
    /// Total spectrum entries resident on this rank (memory model input).
    /// Group tables subsume the rank's own entries, so when present they
    /// replace `hash_kmers` in the tally rather than double-counting.
    pub fn resident_kmer_entries(&self) -> u64 {
        let own = match &self.group_kmers {
            Some(g) => g.len() as u64,
            None => self.hash_kmers.len() as u64,
        };
        own + self.reads_kmers.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_kmers.as_ref().map_or(0, |s| s.len() as u64)
            + self.hot_kmers.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Total tile entries resident on this rank.
    pub fn resident_tile_entries(&self) -> u64 {
        let own = match &self.group_tiles {
            Some(g) => g.len() as u64,
            None => self.hash_tiles.len() as u64,
        };
        own + self.reads_tiles.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_tiles.as_ref().map_or(0, |s| s.len() as u64)
            + self.hot_tiles.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Measured bytes of **every** spectrum table resident on this rank
    /// (owned, reads, replicated, and group — unlike the entry tallies
    /// above, group tables do not replace the owned ones here, because
    /// both really are in memory). Exact: flat-table slot arrays plus
    /// headers.
    pub fn memory_bytes(&self) -> u64 {
        let k = self.hash_kmers.memory_bytes()
            + self.reads_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.hot_kmers.as_ref().map_or(0, |s| s.memory_bytes());
        let t = self.hash_tiles.memory_bytes()
            + self.reads_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.hot_tiles.as_ref().map_or(0, |s| s.memory_bytes());
        (k + t) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use reptile::spectrum::LocalSpectra;

    fn params() -> ReptileParams {
        ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    fn make_reads(n: usize, len: usize) -> Vec<Read> {
        // deterministic reads: groups of 3 copies of a distinct template,
        // so counts pass the threshold (2) while different chunks still
        // contribute different k-mers
        let mut reads = Vec::new();
        for i in 0..n {
            let template = i / 3;
            let seed = dnaseq::mix64(template as u64 + 1);
            let seq: Vec<u8> = (0..len)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize])
                .collect();
            reads.push(Read::new(i as u64 + 1, seq, vec![30; len]));
        }
        reads
    }

    fn partition(reads: &[Read], np: usize, rank: usize) -> Vec<Read> {
        reads.iter().enumerate().filter(|(i, _)| i % np == rank).map(|(_, r)| r.clone()).collect()
    }

    /// Distributed tables must equal the sequential spectra: every code at
    /// exactly its owner, global counts, same pruning.
    fn check_equivalence(np: usize, heur: HeuristicConfig, chunk: usize, threads: usize) {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, chunk, &params(), &heur, threads)
        });
        // union of owned tables == sequential spectrum
        let mut union_k = dnaseq::FxHashMap::default();
        let mut union_t = dnaseq::FxHashMap::default();
        for (tables, _) in &results {
            for (code, count) in tables.hash_kmers.iter() {
                assert_eq!(tables.owners.kmer_owner(code), tables_rank(&results, tables));
                assert!(union_k.insert(code, count).is_none(), "kmer at two owners");
            }
            for (code, count) in tables.hash_tiles.iter() {
                assert!(union_t.insert(code, count).is_none(), "tile at two owners");
            }
        }
        let seq_k: dnaseq::FxHashMap<_, _> = seq.kmers.iter().collect();
        let seq_t: dnaseq::FxHashMap<_, _> = seq.tiles.iter().collect();
        assert_eq!(union_k, seq_k, "np={np} heur={}", heur.label());
        assert_eq!(union_t, seq_t, "np={np} heur={}", heur.label());
    }

    fn tables_rank(results: &[(RankTables, BuildStats)], needle: &RankTables) -> usize {
        results.iter().position(|(t, _)| std::ptr::eq(t, needle)).expect("tables belong to results")
    }

    /// `BuildStats` minus its wall-clock fields — the deterministic
    /// counters the serial and pipelined paths must agree on exactly.
    pub(crate) fn deterministic_counters(stats: &BuildStats) -> BuildStats {
        BuildStats { extract_ns: 0, exchange_ns: 0, overlap_ns: 0, ..*stats }
    }

    #[test]
    fn nonown_aggregation_skips_own_bucket() {
        // aggregate_nonown must leave `me`'s bucket empty (own
        // occurrences are tallied directly, never shipped) while every
        // other owner's bucket arrives sorted and distinct.
        let np = 3;
        let mut a = WorkerOut::new(np);
        let mut b = WorkerOut::new(np);
        for i in 0..500u64 {
            a.kmers[(i % 3) as usize].push(dnaseq::mix64(i % 91) & 0xF_FFFF);
            b.kmers[(i % 3) as usize].push(dnaseq::mix64(i % 77) & 0xF_FFFF);
            a.tiles[((i + 1) % 3) as usize].push((dnaseq::mix64(i % 53) & 0x3FFF_FFFF) as u128);
        }
        let raw = [a, b];
        let raw_nonown: u64 = raw
            .iter()
            .flat_map(|w| w.kmers.iter().enumerate())
            .filter(|&(d, _)| d != 1)
            .map(|(_, bk)| bk.len() as u64)
            .sum();
        let agg = aggregate_nonown(&raw, 1, 20, 30);
        assert!(agg.kmers[1].is_empty() && agg.tiles[1].is_empty());
        for d in [0usize, 2] {
            assert!(!agg.kmers[d].is_empty());
            assert!(agg.kmers[d].windows(2).all(|w| w[0].0 < w[1].0), "owner {d} not sorted");
        }
        let shipped: u64 = agg.kmers.iter().flatten().map(|&(_, c)| c as u64).sum();
        assert_eq!(shipped, raw_nonown, "aggregation must preserve total occurrence counts");
    }

    #[test]
    #[ignore = "manual profiling probe"]
    fn profile_hot_path_breakdown() {
        let p = ReptileParams {
            k: 10,
            tile_overlap: 5,
            kmer_threshold: 4,
            tile_threshold: 3,
            canonical: false,
            ..ReptileParams::for_tests()
        };
        let tcodec = p.tile_codec();
        let kcodec = p.kmer_codec();
        let n = 20_000usize;
        let len = 60usize;
        let reads: Vec<Read> = (0..n)
            .map(|i| {
                let template = i / 3;
                let seed = dnaseq::mix64(template as u64 + 1);
                let seq: Vec<u8> = (0..len)
                    .map(|j| {
                        [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize]
                    })
                    .collect();
                Read::new(i as u64 + 1, seq, vec![30; len])
            })
            .collect();
        let owners = OwnerMap::new(1, &p);
        let chunk = 2000;
        let mut scratch = FusedScratch::default();
        for _round in 0..3 {
            let mut t_extract = 0u64;
            let mut t_tally = 0u64;
            let mut keys = 0u64;
            let mut acc_k: CountAcc<u64> = CountAcc::new(2 * kcodec.k() as u32);
            let mut acc_t: CountAcc<u128> = CountAcc::new(2 * tcodec.len() as u32);
            let mut out = WorkerOut::new(1);
            for c in reads.chunks(chunk) {
                let t0 = Instant::now();
                extract_worker(c, &owners, &tcodec, &mut out, &mut scratch);
                t_extract += elapsed_ns(t0);
                keys += out.kmers[0].len() as u64 + out.tiles[0].len() as u64;
                let t1 = Instant::now();
                acc_k.push_keys(&out.kmers[0]);
                acc_t.push_keys(&out.tiles[0]);
                t_tally += elapsed_ns(t1);
                out.clear();
            }
            let t2 = Instant::now();
            let mut ke = acc_k.finalize();
            let mut te = acc_t.finalize();
            let t_finalize = elapsed_ns(t2);
            let t3 = Instant::now();
            ke.retain(|&(_, c)| c >= p.kmer_threshold);
            te.retain(|&(_, c)| c >= p.tile_threshold);
            let t_prune = elapsed_ns(t3);
            let t4 = Instant::now();
            let mut hk = KmerSpectrum::new(kcodec, p.canonical);
            hk.reserve(ke.len());
            hk.merge_sorted(&ke);
            let mut ht = TileSpectrum::new(tcodec, p.canonical);
            ht.reserve(te.len());
            ht.merge_sorted(&te);
            let t_build = elapsed_ns(t4);
            let per = |ns: u64| ns as f64 / keys as f64;
            eprintln!(
            "keys={keys} extract={:.2} tally={:.2} finalize={:.2} prune={:.2} build={:.2} total={:.2} ns/key (hk={} ht={})",
            per(t_extract),
            per(t_tally),
            per(t_finalize),
            per(t_prune),
            per(t_build),
            per(t_extract + t_tally + t_finalize + t_prune + t_build),
            hk.len(),
            ht.len(),
        );
        }
    }

    #[test]
    fn matches_sequential_base_mode() {
        for np in [1, 2, 4, 7] {
            check_equivalence(np, HeuristicConfig::base(), 1000, 2);
        }
    }

    #[test]
    fn matches_sequential_batch_mode() {
        for threads in [1, 3] {
            check_equivalence(
                4,
                HeuristicConfig { batch_reads: true, ..Default::default() },
                3,
                threads,
            );
        }
    }

    #[test]
    fn pipelined_matches_serial_reference_exactly() {
        // Spot check of the proptest invariant: identical tables AND
        // identical deterministic counters (incl. exchange volumes and
        // peaks) between the serial path and the pipelined one.
        let p = params();
        let reads = make_reads(42, 18);
        let reads_ref = &reads;
        let np = 3;
        for heur in [
            HeuristicConfig::base(),
            HeuristicConfig { batch_reads: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, ..Default::default() },
        ] {
            let serial = Universe::new(np).run(move |comm| {
                let mine = partition(reads_ref, np, comm.rank());
                build_distributed_serial(comm, &mine, 4, &p, &heur)
            });
            for threads in [1, 4] {
                let piped = Universe::new(np).run(move |comm| {
                    let mine = partition(reads_ref, np, comm.rank());
                    build_distributed(comm, &mine, 4, &p, &heur, threads)
                });
                for ((ts, ss), (tp, sp)) in serial.iter().zip(&piped) {
                    assert_eq!(
                        deterministic_counters(ss),
                        deterministic_counters(sp),
                        "stats diverge: threads={threads} heur={}",
                        heur.label()
                    );
                    let sk: Vec<_> = sorted(ts.hash_kmers.iter());
                    let pk: Vec<_> = sorted(tp.hash_kmers.iter());
                    assert_eq!(sk, pk, "kmer tables diverge");
                    let st: Vec<_> = sorted(ts.hash_tiles.iter());
                    let pt: Vec<_> = sorted(tp.hash_tiles.iter());
                    assert_eq!(st, pt, "tile tables diverge");
                    assert_eq!(ts.memory_bytes(), tp.memory_bytes(), "table geometry diverges");
                }
            }
        }
    }

    fn sorted<K: Ord + Copy, I: Iterator<Item = (K, u32)>>(it: I) -> Vec<(K, u32)> {
        let mut v: Vec<(K, u32)> = it.collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    #[test]
    fn batch_mode_bounds_reads_tables() {
        let p = params();
        let reads = make_reads(60, 18);
        let reads_ref = &reads;
        let np = 4;
        let batched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
            build_distributed(comm, &mine, 2, &p, &heur, 2).1
        });
        let unbatched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 2, &p, &HeuristicConfig::base(), 2).1
        });
        for (b, u) in batched.iter().zip(&unbatched) {
            assert!(
                b.peak_reads_kmers <= u.peak_reads_kmers,
                "batching must not grow the reads table ({} vs {})",
                b.peak_reads_kmers,
                u.peak_reads_kmers
            );
            assert!(b.batches >= u.batches);
        }
        // and strictly smaller for at least one rank (many batches)
        assert!(
            batched.iter().zip(&unbatched).any(|(b, u)| b.peak_reads_kmers < u.peak_reads_kmers),
            "batch mode should shrink peak reads tables somewhere"
        );
    }

    #[test]
    fn preaggregation_shrinks_exchange_volume() {
        // Repeated templates mean many duplicate occurrences per batch;
        // the shipped entries must be the distinct keys only.
        let p = params();
        let reads = make_reads(60, 18);
        let reads_ref = &reads;
        let np = 4;
        let stats = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
            build_distributed(comm, &mine, 30, &p, &heur, 2).1
        });
        for s in &stats {
            assert!(s.exchange_entries > 0, "multi-rank build must exchange something");
            assert!(
                s.exchange_entries < s.exchange_occurrences,
                "pre-aggregation must dedup ({} entries vs {} occurrences)",
                s.exchange_entries,
                s.exchange_occurrences
            );
            assert!(s.exchange_bytes > 0);
        }
    }

    #[test]
    fn keep_read_tables_resolves_global_counts() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 4;
        let heur = HeuristicConfig { keep_read_tables: true, ..Default::default() };
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur, 2)
        });
        for (tables, stats) in &results {
            let rk = tables.reads_kmers.as_ref().expect("reads table kept");
            assert!(stats.reads_table_entries > 0 || rk.is_empty());
            for (code, count) in rk.iter() {
                assert_eq!(count, seq.kmers.count(code), "global count mismatch for {code}");
            }
            let rt = tables.reads_tiles.as_ref().expect("tile reads table kept");
            for (code, count) in rt.iter() {
                assert_eq!(count, seq.tiles.count(code));
            }
        }
    }

    #[test]
    fn replication_builds_full_spectra() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 3;
        let heur = HeuristicConfig::replicate_both();
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur, 2)
        });
        for (tables, _) in &results {
            let rep_k = tables.replicated_kmers.as_ref().unwrap();
            let rep_t = tables.replicated_tiles.as_ref().unwrap();
            assert_eq!(rep_k.len(), seq.kmers.len());
            assert_eq!(rep_t.len(), seq.tiles.len());
            for (code, count) in seq.kmers.iter() {
                assert_eq!(rep_k.count(code), count);
            }
            // satellite check: the pre-sized replicated table keeps the
            // exact bytes_for_entries geometry
            assert_eq!(
                rep_k.memory_bytes(),
                reptile::spectrum::KmerSpectrum::bytes_for_entries(rep_k.len())
            );
        }
    }

    #[test]
    fn owned_counts_roughly_uniform() {
        // The Fig 3 property: per-rank k-mer counts spread within a few
        // percent (here looser: random small dataset).
        let p = params();
        let reads = make_reads(200, 30);
        let reads_ref = &reads;
        let np = 8;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &HeuristicConfig::base(), 2).1
        });
        let counts: Vec<u64> = results.iter().map(|s| s.owned_kmers).collect();
        let total: u64 = counts.iter().sum();
        assert!(total > 0);
        // no rank should be empty while others are loaded (hash spread)
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 4 * min.max(1) + 8, "wildly uneven: {counts:?}");
    }
}
