//! Adaptive tallying of key occurrences for the pipelined build.
//!
//! The build's job between extraction and the flat tables is exactly
//! multiset counting: fold a few million raw key occurrences (plus
//! pre-counted `(key, count)` runs from exchanges) into sorted distinct
//! `(key, count)` entries. [`CountAcc`] picks the cheapest exact
//! strategy from the **key width** — spectrum keys are narrow (a k-mer
//! is `2k` bits, a tile `2·tile_len`), and counting gets dramatically
//! cheaper when the key space fits a machine-sized array:
//!
//! | key bits | strategy | per-occurrence work |
//! |----------|----------|---------------------|
//! | ≤ 22 | direct: `counts[key] += 1` into a `2^bits` array | one prefetched increment, no buffering at all |
//! | ≤ 32 | partition `u32` keys on the high bits, count each bucket in an L2-resident array | one 4-byte append + one scatter + one increment |
//! | ≤ 36 | same partition/count over `u64` storage | as above, 8-byte |
//! | ≤ 64 | LSD radix sort + run-length encode | `⌈bits/11⌉` streaming passes |
//! | ≤ 128 | LSD radix sort over `u128` + RLE | as above, 16-byte |
//!
//! Every strategy is exact and emits the same ascending distinct
//! entries with saturating counts; saturating addition of non-negative
//! counts is associative and commutative (`min(Σ, u32::MAX)` whatever
//! the fold order), so deferring the fold is bit-identical to the
//! serial reference's per-occurrence `add_count` loop.
//!
//! Raw buffering is bounded: past [`COMPACT_RAW`] occurrences the
//! buffer is folded into distinct runs in place, so accumulator memory
//! scales with *distinct* keys (like the serial hash tables), not with
//! total occurrences.

use reptile::radix::lsd_sort_by;

/// Direct counting above this key width would outgrow the last-level
/// cache (`2^22` u32 counters = 16 MiB); wider keys partition instead.
const DIRECT_BITS: u32 = 22;
/// Low bits counted per partition bucket: a `2^18`-counter scratch
/// (1 MiB) stays cache-resident while a bucket is counted.
const PART_LOW_BITS: u32 = 18;
/// Partition/count works while `bits - PART_LOW_BITS` top bits keep the
/// bucket table small; past this the accumulator falls back to sorting.
const PART_BITS_MAX: u32 = 36;
/// Fold the raw occurrence buffer into distinct runs past this many
/// buffered keys, bounding accumulator memory by distinct keys.
const COMPACT_RAW: usize = 1 << 22;
/// Software-prefetch lookahead for the direct-count increment loop.
const COUNT_AHEAD: usize = 16;

/// A spectrum key type the accumulator can tally: an unsigned integer
/// wide enough for the declared key bits.
/// Bytes of the direct strategy's fixed `2^bits` count array, 0 for
/// widths that use a buffered strategy. This is the irreducible
/// accumulator floor a memory budget must cover: the array cannot spill
/// (it *is* the aggregation), only its drained entries can.
pub(crate) fn direct_array_bytes(bits: u32) -> u64 {
    if bits <= DIRECT_BITS {
        4u64 << bits
    } else {
        0
    }
}

pub(crate) trait AccKey: Copy + Ord {
    /// Widen to the common arithmetic type.
    fn to_u128(self) -> u128;
    /// Narrow from the common arithmetic type (the value fits by
    /// construction: it was produced under the accumulator's key bits).
    fn from_u128(x: u128) -> Self;
}

impl AccKey for u64 {
    #[inline(always)]
    fn to_u128(self) -> u128 {
        self as u128
    }
    #[inline(always)]
    fn from_u128(x: u128) -> Self {
        x as u64
    }
}

impl AccKey for u128 {
    #[inline(always)]
    fn to_u128(self) -> u128 {
        self
    }
    #[inline(always)]
    fn from_u128(x: u128) -> Self {
        x
    }
}

/// Which counting strategy a key width selects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Strategy {
    Direct,
    Part32,
    Part64,
    Sort64,
    Sort128,
}

fn strategy_for(bits: u32) -> Strategy {
    match bits {
        0..=DIRECT_BITS => Strategy::Direct,
        23..=32 => Strategy::Part32,
        33..=PART_BITS_MAX => Strategy::Part64,
        37..=64 => Strategy::Sort64,
        _ => Strategy::Sort128,
    }
}

/// An exact, width-adaptive occurrence tally (see the module docs).
///
/// Feed it raw occurrences ([`push_keys`]) and pre-counted runs from
/// exchanges ([`push_run`]); [`finalize`] returns the sorted distinct
/// `(key, count)` entries with saturating counts.
///
/// [`push_keys`]: CountAcc::push_keys
/// [`push_run`]: CountAcc::push_run
/// [`finalize`]: CountAcc::finalize
pub(crate) struct CountAcc<K> {
    bits: u32,
    strategy: Strategy,
    /// Direct strategy: `2^bits` saturating counters, allocated on the
    /// first push so untouched accumulators cost nothing.
    counts: Vec<u32>,
    /// Direct strategy: cells of `counts` currently non-zero. Keeps
    /// [`finalize`] scan-free and lets [`pending_entry_bytes`] expose
    /// the implicit working set (the direct array's *resident* size is
    /// constant, so occupancy is the only spill signal it has).
    ///
    /// [`finalize`]: CountAcc::finalize
    /// [`pending_entry_bytes`]: CountAcc::pending_entry_bytes
    occupied: usize,
    raw32: Vec<u32>,
    raw64: Vec<u64>,
    raw128: Vec<u128>,
    /// Pre-counted entries (exchange output and compacted raw); may
    /// repeat keys across pushes, folded at finalize.
    runs: Vec<(K, u32)>,
}

impl<K: AccKey> CountAcc<K> {
    /// An empty tally for keys of the given width.
    pub(crate) fn new(bits: u32) -> CountAcc<K> {
        assert!((1..=128).contains(&bits));
        CountAcc {
            bits,
            strategy: strategy_for(bits),
            counts: Vec::new(),
            occupied: 0,
            raw32: Vec::new(),
            raw64: Vec::new(),
            raw128: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Tally a batch of raw key occurrences (each counts 1).
    pub(crate) fn push_keys(&mut self, keys: &[K]) {
        match self.strategy {
            Strategy::Direct => {
                if self.counts.is_empty() && !keys.is_empty() {
                    self.counts = vec![0u32; 1 << self.bits];
                }
                let counts = &mut self.counts[..];
                let mut newly = 0usize;
                for (i, k) in keys.iter().enumerate() {
                    if let Some(nk) = keys.get(i + COUNT_AHEAD) {
                        dnaseq::simd::prefetch_read(counts, nk.to_u128() as usize);
                    }
                    let idx = k.to_u128() as usize;
                    newly += (counts[idx] == 0) as usize;
                    counts[idx] = counts[idx].saturating_add(1);
                }
                self.occupied += newly;
            }
            Strategy::Part32 => self.raw32.extend(keys.iter().map(|k| k.to_u128() as u32)),
            Strategy::Part64 | Strategy::Sort64 => {
                self.raw64.extend(keys.iter().map(|k| k.to_u128() as u64))
            }
            Strategy::Sort128 => self.raw128.extend(keys.iter().map(|k| k.to_u128())),
        }
        if self.raw32.len() >= COMPACT_RAW
            || self.raw64.len() >= COMPACT_RAW
            || self.raw128.len() >= COMPACT_RAW / 2
        {
            self.compact();
        }
    }

    /// Merge a run of pre-counted `(key, count)` entries (saturating).
    pub(crate) fn push_run(&mut self, run: &[(K, u32)]) {
        match self.strategy {
            Strategy::Direct => {
                if self.counts.is_empty() && !run.is_empty() {
                    self.counts = vec![0u32; 1 << self.bits];
                }
                for &(k, c) in run {
                    let idx = k.to_u128() as usize;
                    self.occupied += (self.counts[idx] == 0 && c > 0) as usize;
                    self.counts[idx] = self.counts[idx].saturating_add(c);
                }
            }
            _ => self.runs.extend_from_slice(run),
        }
    }

    /// Fold buffered raw occurrences into `runs`, freeing the raw
    /// buffer — called automatically past [`COMPACT_RAW`].
    fn compact(&mut self) {
        let entries = self.aggregate_raw();
        self.runs.extend(entries);
        // Keep `runs` itself bounded across many compactions.
        if self.runs.len() >= COMPACT_RAW / 2 {
            fold_sorted(&mut self.runs);
        }
    }

    /// Resident bytes of the accumulator's backing storage right now —
    /// the direct-count array plus the raw occurrence buffers plus the
    /// compacted entry runs, all at allocated capacity. This is the
    /// number the out-of-core build's memory budget charges between
    /// batches to decide when to spill; [`finalize`] (which a spill
    /// calls) returns the direct array and the run list to the
    /// allocator but keeps the raw occurrence buffers allocated for the
    /// next batch — [`release_buffers`] drops those too.
    ///
    /// [`finalize`]: CountAcc::finalize
    /// [`release_buffers`]: CountAcc::release_buffers
    pub(crate) fn memory_bytes(&self) -> usize {
        self.counts.capacity() * 4
            + self.raw32.capacity() * 4
            + self.raw64.capacity() * 8
            + self.raw128.capacity() * 16
            + self.runs.capacity() * std::mem::size_of::<(K, u32)>()
    }

    /// Upper bound on the entry bytes a [`finalize`] (hence a spill)
    /// would materialize right now — the out-of-core spill *trigger*.
    /// Distinct from [`memory_bytes`]: the direct-count array's
    /// resident size never changes, so its spill pressure is the
    /// occupancy, while the buffered strategies' pressure is everything
    /// they have queued (raw occurrences + runs, each at most one
    /// output entry).
    ///
    /// [`finalize`]: CountAcc::finalize
    /// [`memory_bytes`]: CountAcc::memory_bytes
    pub(crate) fn pending_entry_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(K, u32)>();
        match self.strategy {
            Strategy::Direct => self.occupied * entry,
            _ => {
                (self.raw32.len() + self.raw64.len() + self.raw128.len() + self.runs.len()) * entry
            }
        }
    }

    /// Whether this accumulator counts in a direct-index array. A
    /// direct kind never spills: the array *is* the aggregation (fixed
    /// size, charged in the out-of-core fixed floor), so draining it to
    /// disk frees nothing — the out-of-core finish streams it straight
    /// into the table via [`iter_direct`] instead.
    ///
    /// [`iter_direct`]: CountAcc::iter_direct
    pub(crate) fn is_direct(&self) -> bool {
        self.strategy == Strategy::Direct
    }

    /// Iterate the direct array's occupied slots in ascending key order
    /// without materializing an entry vector — the bounded-transient
    /// drain the out-of-core finish streams into the flat table.
    pub(crate) fn iter_direct(&self) -> impl Iterator<Item = (K, u32)> + '_ {
        debug_assert!(self.is_direct());
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(k, &c)| (K::from_u128(k as u128), c))
    }

    /// Drop the retained buffer capacities. [`finalize`] hands the raw
    /// occurrence buffers back empty-but-allocated so the next batch
    /// reuses them; the out-of-core finish calls this after the *final*
    /// drain, when no next batch is coming, so the merge's budget room
    /// is not consumed by dead capacity.
    ///
    /// [`finalize`]: CountAcc::finalize
    pub(crate) fn release_buffers(&mut self) {
        self.raw32 = Vec::new();
        self.raw64 = Vec::new();
        self.raw128 = Vec::new();
        self.runs = Vec::new();
    }

    /// Drain everything into sorted distinct entries (ascending keys,
    /// saturating counts), leaving the accumulator empty.
    pub(crate) fn finalize(&mut self) -> Vec<(K, u32)> {
        if self.strategy == Strategy::Direct {
            let counts = std::mem::take(&mut self.counts);
            let distinct = std::mem::take(&mut self.occupied);
            if counts.is_empty() {
                return Vec::new();
            }
            // Branchless emit at the occupancy-tracked exact size: every
            // slot stores unconditionally at a cursor that only advances
            // past non-zero counts (the spare slot absorbs the trailing
            // dummy writes) — no per-slot branch for ~25%-dense counters
            // to mispredict, and no sizing pre-pass (pushes counted
            // 0→non-zero transitions as they happened).
            let mut out: Vec<(K, u32)> = vec![(K::from_u128(0), 0); distinct + 1];
            let mut j = 0usize;
            for (k, &c) in counts.iter().enumerate() {
                out[j] = (K::from_u128(k as u128), c);
                j += (c != 0) as usize;
            }
            out.truncate(distinct);
            return out;
        }
        let entries = self.aggregate_raw();
        if self.runs.is_empty() {
            return entries;
        }
        let mut runs = std::mem::take(&mut self.runs);
        fold_sorted(&mut runs);
        merge_entry_runs(entries, runs)
    }

    /// Aggregate the raw occurrence buffer into sorted distinct entries
    /// via the width-selected strategy, clearing the buffer.
    fn aggregate_raw(&mut self) -> Vec<(K, u32)> {
        match self.strategy {
            Strategy::Direct => unreachable!("direct strategy buffers no raw keys"),
            Strategy::Part32 => {
                let mut raw = std::mem::take(&mut self.raw32);
                let out = partition_count(&mut raw, self.bits);
                self.raw32 = raw;
                self.raw32.clear();
                out
            }
            Strategy::Part64 => {
                let mut raw = std::mem::take(&mut self.raw64);
                let out = partition_count(&mut raw, self.bits);
                self.raw64 = raw;
                self.raw64.clear();
                out
            }
            Strategy::Sort64 => {
                let mut raw = std::mem::take(&mut self.raw64);
                let out = sort_rle(&mut raw, self.bits);
                self.raw64 = raw;
                self.raw64.clear();
                out
            }
            Strategy::Sort128 => {
                let mut raw = std::mem::take(&mut self.raw128);
                let out = sort_rle(&mut raw, self.bits);
                self.raw128 = raw;
                self.raw128.clear();
                out
            }
        }
    }
}

/// Sort `runs` by key and fold duplicates in place (saturating).
fn fold_sorted<K: AccKey>(runs: &mut Vec<(K, u32)>) {
    runs.sort_unstable_by_key(|e| e.0);
    runs.dedup_by(|cur, acc| {
        if acc.0 == cur.0 {
            acc.1 = acc.1.saturating_add(cur.1);
            true
        } else {
            false
        }
    });
}

/// Two-pointer merge of two sorted distinct entry lists (saturating).
fn merge_entry_runs<K: AccKey>(a: Vec<(K, u32)>, b: Vec<(K, u32)>) -> Vec<(K, u32)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out: Vec<(K, u32)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1.saturating_add(b[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// A raw-buffer word the counting strategies operate on.
///
/// `to_u64` is the hot-loop arithmetic width for partition/count (only
/// ever instantiated at `u32`/`u64`, where it is lossless); `widen` is
/// the lossless emission width.
trait PartWord: Copy {
    fn to_u64(self) -> u64;
    fn widen(self) -> u128;
}
impl PartWord for u32 {
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn widen(self) -> u128 {
        self as u128
    }
}
impl PartWord for u64 {
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline(always)]
    fn widen(self) -> u128 {
        self as u128
    }
}
impl PartWord for u128 {
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn widen(self) -> u128 {
        self
    }
}

/// Count keys of `bits` width by partitioning on the top
/// `bits − PART_LOW_BITS` bits (one contiguous scatter), then counting
/// each bucket's low bits in a cache-resident `2^PART_LOW_BITS` array.
/// Buckets ascend by the high bits and each bucket emits ascending low
/// bits, so the concatenation is globally sorted.
fn partition_count<K: AccKey, W: PartWord>(raw: &mut [W], bits: u32) -> Vec<(K, u32)> {
    if raw.is_empty() {
        return Vec::new();
    }
    debug_assert!(bits > PART_LOW_BITS && bits <= PART_BITS_MAX);
    let hi_bits = bits - PART_LOW_BITS;
    let nb = 1usize << hi_bits;
    let mut hist = vec![0u32; nb];
    for k in raw.iter() {
        hist[(k.to_u64() >> PART_LOW_BITS) as usize] += 1;
    }
    let mut starts = vec![0u32; nb + 1];
    let mut acc = 0u32;
    for (s, &h) in starts.iter_mut().zip(hist.iter()) {
        *s = acc;
        acc += h;
    }
    starts[nb] = acc;
    let mut cursors = starts[..nb].to_vec();
    let mut parts: Vec<W> = vec![raw[0]; raw.len()];
    for &k in raw.iter() {
        let b = (k.to_u64() >> PART_LOW_BITS) as usize;
        parts[cursors[b] as usize] = k;
        cursors[b] += 1;
    }
    let mut counts = vec![0u32; 1usize << PART_LOW_BITS];
    let mut touched: Vec<u32> = Vec::new();
    let mut out: Vec<(K, u32)> = Vec::new();
    let low_mask = (1u64 << PART_LOW_BITS) - 1;
    for b in 0..nb {
        let seg = &parts[starts[b] as usize..starts[b + 1] as usize];
        if seg.is_empty() {
            continue;
        }
        touched.clear();
        for &k in seg {
            let lo = (k.to_u64() & low_mask) as usize;
            if counts[lo] == 0 {
                touched.push(lo as u32);
            }
            counts[lo] = counts[lo].saturating_add(1);
        }
        touched.sort_unstable();
        let hi = (b as u64) << PART_LOW_BITS;
        for &lo in &touched {
            out.push((K::from_u128((hi | lo as u64) as u128), counts[lo as usize]));
            counts[lo as usize] = 0;
        }
    }
    out
}

/// Count keys by LSD radix sort plus a run-length sweep — the fully
/// general strategy for keys too wide to partition.
fn sort_rle<K: AccKey, W: PartWord + reptile::radix::RadixWord + Ord>(
    raw: &mut Vec<W>,
    bits: u32,
) -> Vec<(K, u32)> {
    if raw.is_empty() {
        return Vec::new();
    }
    let mut tmp: Vec<W> = Vec::new();
    lsd_sort_by(raw, &mut tmp, bits, |&k| k);
    let mut out: Vec<(K, u32)> = Vec::new();
    for &k in raw.iter() {
        let key = K::from_u128(k.widen());
        match out.last_mut() {
            Some(last) if last.0 == key => last.1 = last.1.saturating_add(1),
            _ => out.push((key, 1)),
        }
    }
    out
}

/// Aggregate per-worker occurrence buckets into sorted distinct
/// `(key, count)` entries — the per-batch pre-aggregation the exchange
/// path runs on non-owned buckets before shipping them. Same adaptive
/// strategies as [`CountAcc`], via a throwaway accumulator.
pub(crate) fn aggregate_occurrences<'p, K: AccKey + 'p>(
    parts: impl Iterator<Item = &'p Vec<K>>,
    bits: u32,
) -> Vec<(K, u32)> {
    let mut acc: CountAcc<K> = CountAcc::new(bits);
    for part in parts {
        acc.push_keys(part);
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference<K: AccKey + std::hash::Hash>(keys: &[K], runs: &[(K, u32)]) -> Vec<(K, u32)> {
        let mut map: dnaseq::FxHashMap<K, u32> = dnaseq::FxHashMap::default();
        for &k in keys {
            let c = map.entry(k).or_insert(0);
            *c = c.saturating_add(1);
        }
        for &(k, c) in runs {
            let e = map.entry(k).or_insert(0);
            *e = e.saturating_add(c);
        }
        let mut v: Vec<(K, u32)> = map.into_iter().collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    fn keys_u64(n: usize, bits: u32, seed: u64) -> Vec<u64> {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        (0..n as u64).map(|i| dnaseq::mix64(seed ^ (i % 700)) & mask).collect()
    }

    #[test]
    fn every_strategy_matches_hash_counting_u64() {
        for bits in [4u32, 20, 22, 23, 30, 32, 33, 36, 37, 48, 64] {
            let keys = keys_u64(5000, bits, 11);
            let runs: Vec<(u64, u32)> =
                keys_u64(300, bits, 99).into_iter().map(|k| (k, 1 + (k % 5) as u32)).collect();
            let mut acc: CountAcc<u64> = CountAcc::new(bits);
            // interleave raw pushes and runs to exercise ordering
            acc.push_keys(&keys[..keys.len() / 2]);
            acc.push_run(&runs[..runs.len() / 2]);
            acc.push_keys(&keys[keys.len() / 2..]);
            acc.push_run(&runs[runs.len() / 2..]);
            let got = acc.finalize();
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "bits={bits}: not ascending");
            assert_eq!(got, reference(&keys, &runs), "bits={bits}");
        }
    }

    #[test]
    fn every_strategy_matches_hash_counting_u128() {
        for bits in [20u32, 30, 36, 60, 70, 100, 128] {
            let mask = if bits == 128 { u128::MAX } else { (1u128 << bits) - 1 };
            let keys: Vec<u128> = (0..4000u64)
                .map(|i| {
                    (((dnaseq::mix64(i % 531) as u128) << 64)
                        | dnaseq::mix64((i % 531) ^ 7) as u128)
                        & mask
                })
                .collect();
            let runs: Vec<(u128, u32)> = keys.iter().step_by(9).map(|&k| (k, 3)).collect();
            let mut acc: CountAcc<u128> = CountAcc::new(bits);
            acc.push_run(&runs);
            acc.push_keys(&keys);
            let got = acc.finalize();
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "bits={bits}: not ascending");
            assert_eq!(got, reference(&keys, &runs), "bits={bits}");
        }
    }

    #[test]
    fn compaction_preserves_counts() {
        // Force mid-stream compaction explicitly (the automatic trigger
        // needs millions of keys) and check the fold is lossless.
        for bits in [30u32, 48] {
            let keys = keys_u64(3000, bits, 5);
            let mut acc: CountAcc<u64> = CountAcc::new(bits);
            acc.push_keys(&keys[..1000]);
            acc.compact();
            acc.push_keys(&keys[1000..]);
            acc.compact();
            acc.compact(); // idempotent on an empty raw buffer
            let got = acc.finalize();
            assert_eq!(got, reference(&keys, &[]), "bits={bits}");
        }
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        for bits in [10u32, 30, 48] {
            let mut acc: CountAcc<u64> = CountAcc::new(bits);
            acc.push_run(&[(7, u32::MAX - 1)]);
            acc.push_keys(&[7, 7, 7]);
            acc.push_run(&[(7, u32::MAX)]);
            assert_eq!(acc.finalize(), vec![(7u64, u32::MAX)], "bits={bits}");
        }
    }

    #[test]
    fn empty_and_untouched_accumulators_are_free() {
        let mut acc: CountAcc<u64> = CountAcc::new(20);
        assert!(acc.counts.is_empty(), "direct counters must allocate lazily");
        assert!(acc.finalize().is_empty());
        let mut acc: CountAcc<u128> = CountAcc::new(100);
        acc.push_keys(&[]);
        acc.push_run(&[]);
        assert!(acc.finalize().is_empty());
    }

    #[test]
    fn aggregate_occurrences_matches_sort_and_rle() {
        for (nparts, bits, mask) in
            [(1usize, 20u32, 0xF_FFFFu64), (3, 20, 0xF_FFFF), (7, 30, 0x3FFF_FFFF), (3, 8, 0xFF)]
        {
            let keys: Vec<u64> = (0..4000u64).map(|i| dnaseq::mix64(i % 977) & mask).collect();
            let parts: Vec<Vec<u64>> = (0..nparts)
                .map(|p| keys.iter().copied().skip(p).step_by(nparts).collect())
                .collect();
            let got = aggregate_occurrences(parts.iter(), bits);
            assert_eq!(got, reference(&keys, &[]), "nparts={nparts} bits={bits}");
        }
        let none: Vec<Vec<u64>> = vec![Vec::new(); 3];
        assert!(aggregate_occurrences(none.iter(), 20).is_empty());
    }
}
