//! Execution-mode heuristics (paper §III-A / §III-B).
//!
//! "We have also implemented heuristics to be employed for efficient
//! execution based on the dataset and the architecture. The primary
//! purpose of these heuristics is to lower the runtime or memory
//! footprint based on the hardware being tested."

/// The heuristic switchboard. All combinations the paper evaluates in
/// Fig 5 are expressible; invalid combinations are rejected by
/// [`HeuristicConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// *Universal* mode: lookups travel as one self-describing struct
    /// (kind embedded in the payload) on a single tag, so the serving
    /// rank never inspects tags before receiving — "makes the call to
    /// MPI Probe unwarranted" at the price of a slightly larger message.
    pub universal: bool,
    /// *Read k-mers/tiles*: after construction, keep the `readsKmer` /
    /// `readsTile` tables (k-mers/tiles seen in this rank's own reads but
    /// owned elsewhere) with their **global** counts, resolved by one
    /// extra alltoallv round; look them up before messaging.
    pub keep_read_tables: bool,
    /// *Allgather k-mers*: replicate the whole k-mer spectrum on every
    /// rank (no k-mer messages during correction; more memory).
    pub replicate_kmers: bool,
    /// *Allgather tiles*: replicate the whole tile spectrum.
    pub replicate_tiles: bool,
    /// *Add remote k-mer/tile lookups*: cache every remote answer in the
    /// reads tables. Requires `keep_read_tables` ("this mode can only be
    /// run with the read kmers mode").
    pub cache_remote: bool,
    /// *Batch reads table*: run the Step III exchange after every chunk
    /// of reads and clear the reads tables, bounding their size; needs a
    /// max-batches allreduce so every rank keeps joining the collectives.
    pub batch_reads: bool,
    /// Static load balancing (§III-A): redistribute reads to
    /// `hash(seq) % np` before construction.
    pub load_balance: bool,
    /// *Partial replication* (the paper's §V future-work proposal): ranks
    /// are partitioned into groups of this size, and every rank
    /// additionally stores the owned spectra of its whole group, so
    /// lookups whose owner is in-group stay local. `1` disables; `np`
    /// degenerates to full replication. "One potential strategy is for
    /// each rank to store the k-mers and tiles of a subset of other
    /// ranks, besides the k-mers and the tiles the rank owns."
    pub partial_group: usize,
    /// *Aggregate lookups* (extension beyond the paper, after diBELLA's
    /// per-destination request aggregation): before correcting a chunk
    /// of reads, enumerate every key the corrector can touch
    /// (`reptile::prefetch`), and fetch all counts owned by each remote
    /// rank with **one** vectorized `TAG_BATCH_REQ` round trip instead
    /// of a synchronous round trip per key. Answers land in a prefetch
    /// cache consulted before the single-key fallback; output stays
    /// bit-identical.
    pub aggregate_lookups: bool,
    /// *Top-K hot-shard replication* (adaptive balancing, beyond the
    /// paper): after the build, ranks allgather per-owner lookup-volume
    /// histograms sampled from their own reads, agree on the at-most-K
    /// hottest spectrum owners whose volume exceeds the skew gate
    /// ([`crate::balance::HOT_SHARD_MIN_LOAD`] × fair share), and
    /// replicate exactly those owners' pruned shard groups to every rank.
    /// Lookups route to the local replica first — the paper's
    /// all-or-nothing allgather heuristic generalized to "replicate only
    /// what is hot". `0` disables; `np` (or more) permits replicating
    /// every owner that trips the gate.
    pub hot_shard_k: usize,
    /// *Read-chunk stealing* (adaptive balancing, beyond the paper):
    /// ranks that drain their Step IV correction queue early pull whole
    /// read chunks from the most-loaded remaining rank over a
    /// seq-stamped steal protocol riding the fault-tolerant service
    /// plane. Output stays bit-identical because correction is a pure
    /// function of the (immutable) spectra and the final merge is
    /// id-ordered. Threaded engine: real work movement; virtual engine:
    /// modeled rebalanced per-rank compute.
    pub steal_chunks: bool,
}

impl Default for HeuristicConfig {
    /// The paper's base mode: distributed everything, tagged messages,
    /// load balancing on (all scaling figures use it).
    fn default() -> HeuristicConfig {
        HeuristicConfig {
            universal: false,
            keep_read_tables: false,
            replicate_kmers: false,
            replicate_tiles: false,
            cache_remote: false,
            batch_reads: false,
            load_balance: true,
            partial_group: 1,
            aggregate_lookups: false,
            hot_shard_k: 0,
            steal_chunks: false,
        }
    }
}

impl HeuristicConfig {
    /// Base mode (see [`Default`]).
    pub fn base() -> HeuristicConfig {
        HeuristicConfig::default()
    }

    /// The configuration the paper settles on for its large runs:
    /// "the advantageous heuristics are universal ... and batch reads
    /// table" (§IV), plus load balancing.
    pub fn paper_production() -> HeuristicConfig {
        HeuristicConfig { universal: true, batch_reads: true, ..HeuristicConfig::default() }
    }

    /// Full replication of both spectra (the "k-mers and tiles replicated
    /// on every node" row of Fig 5) — no correction-phase messaging.
    pub fn replicate_both() -> HeuristicConfig {
        HeuristicConfig {
            replicate_kmers: true,
            replicate_tiles: true,
            ..HeuristicConfig::default()
        }
    }

    /// The adaptive-balancing bundle: top-K hot-shard replication plus
    /// read-chunk stealing on top of the paper's production heuristics.
    /// `k` caps how many hot owners may be replicated (0 disables).
    pub fn adaptive(k: usize) -> HeuristicConfig {
        HeuristicConfig { hot_shard_k: k, steal_chunks: true, ..HeuristicConfig::default() }
    }

    /// Every heuristic combination the construction-phase equivalence
    /// suite sweeps: one representative per switch (plus the pairings
    /// the paper evaluates together). All entries satisfy [`validate`];
    /// the pipelined builder must be bit-identical to the serial
    /// reference under each of them.
    ///
    /// [`validate`]: HeuristicConfig::validate
    pub fn construction_matrix() -> Vec<HeuristicConfig> {
        let base = HeuristicConfig::default();
        vec![
            base,
            HeuristicConfig { universal: true, ..base },
            HeuristicConfig { batch_reads: true, ..base },
            HeuristicConfig { keep_read_tables: true, ..base },
            HeuristicConfig { keep_read_tables: true, cache_remote: true, ..base },
            HeuristicConfig::replicate_both(),
            HeuristicConfig { partial_group: 2, ..base },
            HeuristicConfig { aggregate_lookups: true, ..base },
            HeuristicConfig::paper_production(),
        ]
    }

    /// Validate the combination; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_remote && !self.keep_read_tables {
            return Err("cache_remote requires keep_read_tables \
                        (remote answers are added to the readsKmer/readsTile tables)"
                .into());
        }
        if self.batch_reads && self.keep_read_tables {
            return Err("batch_reads clears the reads tables after every chunk, \
                        which contradicts keep_read_tables"
                .into());
        }
        if self.partial_group == 0 {
            return Err("partial_group must be >= 1 (1 disables partial replication)".into());
        }
        if self.partial_group > 1 && (self.replicate_kmers || self.replicate_tiles) {
            return Err("partial replication is redundant under full replication \
                        (drop replicate_kmers/replicate_tiles or set partial_group = 1)"
                .into());
        }
        if self.hot_shard_k > 0 && self.replicate_kmers && self.replicate_tiles {
            return Err("hot-shard replication is redundant when both spectra are \
                        already fully replicated (drop hot_shard_k or the replicate_* flags)"
                .into());
        }
        Ok(())
    }

    /// Whether any correction-phase k-mer messages can occur.
    pub fn kmers_need_messages(&self) -> bool {
        !self.replicate_kmers
    }

    /// Whether any correction-phase tile messages can occur.
    pub fn tiles_need_messages(&self) -> bool {
        !self.replicate_tiles
    }

    /// Whether Step IV uses the point-to-point service plane at all.
    /// With both spectra fully replicated every lookup is local, so the
    /// engines can skip the comm thread — and fault plans that only
    /// touch the p2p plane cannot affect the run.
    pub fn needs_service_plane(&self, np: usize) -> bool {
        np > 1
            && (self.steal_chunks
                || (self.partial_group < np
                    && (self.kmers_need_messages() || self.tiles_need_messages())))
    }

    /// Human-readable label used in Fig 5 outputs.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.universal {
            parts.push("universal");
        }
        if self.keep_read_tables {
            parts.push("read-kmers");
        }
        if self.replicate_kmers && self.replicate_tiles {
            parts.push("repl-both");
        } else if self.replicate_kmers {
            parts.push("repl-kmers");
        } else if self.replicate_tiles {
            parts.push("repl-tiles");
        }
        if self.cache_remote {
            parts.push("add-remote");
        }
        if self.batch_reads {
            parts.push("batch-reads");
        }
        if self.partial_group > 1 {
            parts.push("partial-repl");
        }
        if self.aggregate_lookups {
            parts.push("agg-lookups");
        }
        let hot;
        if self.hot_shard_k > 0 {
            hot = format!("hot-shards({})", self.hot_shard_k);
            parts.push(&hot);
        }
        if self.steal_chunks {
            parts.push("steal");
        }
        if !self.load_balance {
            parts.push("imbalanced");
        }
        if parts.is_empty() {
            "base".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        HeuristicConfig::default().validate().unwrap();
        HeuristicConfig::paper_production().validate().unwrap();
        HeuristicConfig::replicate_both().validate().unwrap();
    }

    #[test]
    fn cache_remote_needs_read_tables() {
        let h = HeuristicConfig { cache_remote: true, ..HeuristicConfig::default() };
        assert!(h.validate().is_err());
        let ok = HeuristicConfig {
            cache_remote: true,
            keep_read_tables: true,
            ..HeuristicConfig::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn batch_conflicts_with_read_tables() {
        let h = HeuristicConfig {
            batch_reads: true,
            keep_read_tables: true,
            ..HeuristicConfig::default()
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn replication_silences_messages() {
        let h = HeuristicConfig::replicate_both();
        assert!(!h.kmers_need_messages());
        assert!(!h.tiles_need_messages());
        let base = HeuristicConfig::base();
        assert!(base.kmers_need_messages());
        assert!(base.tiles_need_messages());
    }

    #[test]
    fn service_plane_requirement() {
        assert!(HeuristicConfig::base().needs_service_plane(4));
        assert!(!HeuristicConfig::base().needs_service_plane(1), "single rank is all-local");
        assert!(!HeuristicConfig::replicate_both().needs_service_plane(4));
        // one k-mer-only replication still needs the plane for tiles
        let h = HeuristicConfig { replicate_kmers: true, ..HeuristicConfig::default() };
        assert!(h.needs_service_plane(4));
        // a partial group covering every rank is full replication
        let full = HeuristicConfig { partial_group: 4, ..HeuristicConfig::default() };
        assert!(!full.needs_service_plane(4));
        assert!(full.needs_service_plane(8));
    }

    #[test]
    fn partial_group_validation() {
        let bad = HeuristicConfig { partial_group: 0, ..HeuristicConfig::default() };
        assert!(bad.validate().is_err());
        let redundant = HeuristicConfig {
            partial_group: 4,
            replicate_tiles: true,
            ..HeuristicConfig::default()
        };
        assert!(redundant.validate().is_err());
        let ok = HeuristicConfig { partial_group: 4, ..HeuristicConfig::default() };
        ok.validate().unwrap();
        assert_eq!(ok.label(), "partial-repl");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(HeuristicConfig::base().label(), "base");
        assert_eq!(HeuristicConfig::paper_production().label(), "universal+batch-reads");
        assert_eq!(HeuristicConfig::replicate_both().label(), "repl-both");
        let imb = HeuristicConfig { load_balance: false, ..HeuristicConfig::default() };
        assert_eq!(imb.label(), "imbalanced");
        let agg = HeuristicConfig { aggregate_lookups: true, ..HeuristicConfig::default() };
        assert_eq!(agg.label(), "agg-lookups");
    }

    #[test]
    fn construction_matrix_entries_are_valid_and_distinct() {
        let matrix = HeuristicConfig::construction_matrix();
        for h in &matrix {
            h.validate().unwrap_or_else(|e| panic!("{}: {e}", h.label()));
        }
        for (i, a) in matrix.iter().enumerate() {
            for b in &matrix[i + 1..] {
                assert_ne!(a, b, "duplicate matrix entry {}", a.label());
            }
        }
    }

    #[test]
    fn adaptive_knobs_validate_and_label() {
        let a = HeuristicConfig::adaptive(2);
        a.validate().unwrap();
        assert_eq!(a.label(), "hot-shards(2)+steal");
        // hot-shard replication composes with partial replication and a
        // single fully-replicated spectrum, but is redundant under both.
        HeuristicConfig { hot_shard_k: 1, partial_group: 2, ..HeuristicConfig::default() }
            .validate()
            .unwrap();
        HeuristicConfig { hot_shard_k: 1, replicate_kmers: true, ..HeuristicConfig::default() }
            .validate()
            .unwrap();
        let redundant = HeuristicConfig { hot_shard_k: 1, ..HeuristicConfig::replicate_both() };
        assert!(redundant.validate().is_err());
    }

    #[test]
    fn stealing_keeps_service_plane_alive() {
        // Even a fully replicated run needs the comm thread when chunks
        // can be stolen: the steal requests ride the service plane.
        let h = HeuristicConfig { steal_chunks: true, ..HeuristicConfig::replicate_both() };
        assert!(h.needs_service_plane(4));
        assert!(!h.needs_service_plane(1));
    }

    #[test]
    fn aggregate_composes_with_other_heuristics() {
        for h in [
            HeuristicConfig { aggregate_lookups: true, ..HeuristicConfig::default() },
            HeuristicConfig { aggregate_lookups: true, ..HeuristicConfig::paper_production() },
            HeuristicConfig {
                aggregate_lookups: true,
                keep_read_tables: true,
                cache_remote: true,
                ..HeuristicConfig::default()
            },
        ] {
            h.validate().unwrap();
        }
    }
}
