//! Corrected-read output.
//!
//! "Once all the ranks have finished their error correction step, each
//! rank shuts down its communication threads and outputs the reads it
//! has corrected" (paper §III step IV). On a real cluster every rank
//! writes its own shard (a shared write to one file would serialize);
//! this module implements that sharded layout plus the merge tool that
//! reconstitutes a single sequence-ordered FASTA.
//!
//! Shard naming: `<stem>.rank<NNNN>.fa` in the output directory. Shards
//! contain each rank's reads sorted by sequence number; the merge is a
//! k-way merge over already-sorted shards.

use dnaseq::Read;
use genio::fasta::{write_record, RecordReader};
use genio::{IoError, Result};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Path of rank `rank`'s shard under `dir` with file stem `stem`.
pub fn shard_path(dir: &Path, stem: &str, rank: usize) -> PathBuf {
    dir.join(format!("{stem}.rank{rank:04}.fa"))
}

/// Write one rank's corrected reads as its shard. Reads must already be
/// sorted by id (the engines guarantee it).
pub fn write_shard(dir: &Path, stem: &str, rank: usize, reads: &[Read]) -> Result<()> {
    debug_assert!(reads.windows(2).all(|w| w[0].id < w[1].id), "shard must be id-sorted");
    std::fs::create_dir_all(dir)?;
    let mut out = BufWriter::new(std::fs::File::create(shard_path(dir, stem, rank))?);
    for read in reads {
        write_record(&mut out, read.id, &read.seq)?;
    }
    out.flush()?;
    Ok(())
}

/// Write every rank's shard from a distributed run's per-rank outputs.
pub fn write_all_shards(dir: &Path, stem: &str, per_rank: &[Vec<Read>]) -> Result<()> {
    for (rank, reads) in per_rank.iter().enumerate() {
        write_shard(dir, stem, rank, reads)?;
    }
    Ok(())
}

/// Merge `np` shards into one sequence-ordered FASTA at `out_path`.
/// A k-way merge: shards are internally sorted, so only the heads
/// compete. Returns the number of reads written.
pub fn merge_shards(dir: &Path, stem: &str, np: usize, out_path: &Path) -> Result<u64> {
    struct Head {
        id: u64,
        line: Vec<u8>,
        reader: RecordReader<BufReader<std::fs::File>>,
    }
    let mut heads: Vec<Head> = Vec::with_capacity(np);
    for rank in 0..np {
        let path = shard_path(dir, stem, rank);
        let mut reader = RecordReader::new(BufReader::new(std::fs::File::open(&path)?));
        if let Some(rec) = reader.next_record()? {
            heads.push(Head { id: rec.id, line: rec.line, reader });
        }
    }
    let mut out = BufWriter::new(std::fs::File::create(out_path)?);
    let mut written = 0u64;
    let mut last_id = 0u64;
    while !heads.is_empty() {
        // smallest head wins; np is small so a linear scan beats a heap
        let (idx, _) = heads.iter().enumerate().min_by_key(|(_, h)| h.id).expect("non-empty");
        let head = &mut heads[idx];
        if head.id <= last_id && written > 0 {
            return Err(IoError::Mismatch(format!(
                "duplicate or out-of-order sequence number {} across shards",
                head.id
            )));
        }
        last_id = head.id;
        write_record(&mut out, head.id, &head.line)?;
        written += 1;
        match head.reader.next_record()? {
            Some(rec) => {
                head.id = rec.id;
                head.line = rec.line;
            }
            None => {
                heads.swap_remove(idx);
            }
        }
    }
    out.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reptile-shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read(id: u64) -> Read {
        let seq: Vec<u8> =
            (0..12).map(|j| [b'A', b'C', b'G', b'T'][(id as usize + j) % 4]).collect();
        Read::new(id, seq, vec![30; 12])
    }

    #[test]
    fn shards_round_trip_through_merge() {
        let dir = tempdir("merge");
        // reads 1..=20 dealt round-robin to 3 ranks (each shard sorted)
        let mut per_rank: Vec<Vec<Read>> = vec![Vec::new(); 3];
        for id in 1..=20u64 {
            per_rank[(id % 3) as usize].push(read(id));
        }
        write_all_shards(&dir, "out", &per_rank).unwrap();
        let merged = dir.join("merged.fa");
        let n = merge_shards(&dir, "out", 3, &merged).unwrap();
        assert_eq!(n, 20);
        // merged file is the full ordered dataset
        let mut rdr = RecordReader::new(BufReader::new(std::fs::File::open(&merged).unwrap()));
        let recs = rdr.read_all().unwrap();
        assert_eq!(recs.len(), 20);
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.id, i as u64 + 1);
            assert_eq!(rec.line, read(rec.id).seq);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_shards_are_fine() {
        let dir = tempdir("empty");
        let per_rank: Vec<Vec<Read>> = vec![vec![read(5)], Vec::new(), vec![read(9)]];
        write_all_shards(&dir, "out", &per_rank).unwrap();
        let merged = dir.join("merged.fa");
        let n = merge_shards(&dir, "out", 3, &merged).unwrap();
        assert_eq!(n, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_ids_rejected() {
        let dir = tempdir("dup");
        let per_rank: Vec<Vec<Read>> = vec![vec![read(5)], vec![read(5)]];
        write_all_shards(&dir, "out", &per_rank).unwrap();
        let merged = dir.join("merged.fa");
        assert!(matches!(merge_shards(&dir, "out", 2, &merged), Err(IoError::Mismatch(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_shard_is_io_error() {
        let dir = tempdir("missing");
        assert!(matches!(merge_shards(&dir, "out", 2, &dir.join("m.fa")), Err(IoError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_output_shards_and_merges() {
        // end-to-end: distributed run -> per-rank shards -> merged file
        use crate::engine::EngineConfig;
        use crate::engine_mt::run_distributed;
        let dir = tempdir("engine");
        let p = reptile::ReptileParams {
            k: 6,
            tile_overlap: 3,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..Default::default()
        };
        let reads: Vec<Read> = (1..=40u64).map(read).collect();
        let np = 4;
        let out = run_distributed(&EngineConfig::new(np, p), &reads);
        // reconstruct per-rank outputs from the report ordering: reads are
        // globally sorted; re-shard by owner for the test
        let mut per_rank: Vec<Vec<Read>> = vec![Vec::new(); np];
        for r in &out.corrected {
            per_rank[r.owner(np)].push(r.clone());
        }
        write_all_shards(&dir, "corrected", &per_rank).unwrap();
        let merged = dir.join("corrected.fa");
        let n = merge_shards(&dir, "corrected", np, &merged).unwrap();
        assert_eq!(n, 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
