//! The serve plane: a long-lived correction service (DESIGN.md §13).
//!
//! PR-5 made the spectrum a build-once artifact; this module makes the
//! *correction side* a build-once artifact too. A [`ServeEngine`] spins
//! up `np` rank threads exactly once, loads the specstore snapshot (or
//! builds the spectrum from seed reads) exactly once, and keeps every
//! piece of Step-IV state — comm threads, owner maps, heuristic side
//! tables, prefetch maps, wire buffers — warm for the engine's whole
//! lifetime. Individual reads are then corrected as *requests* through
//! a bounded multi-producer admission queue:
//!
//! ```text
//!  submit() ──► [admission queue] ──► rank workers (micro-batches)
//!     │              │ high-water        │ prefetch → correct
//!     ▼              ▼                   ▼
//!  Backpressure   bounded depth     [completion buffer] ──► drain()
//!  (retry-after)
//! ```
//!
//! **Backpressure.** The queue is bounded by `ServeConfig::queue_depth`
//! (the high-water mark): once it holds that many requests, `submit`
//! rejects with [`SubmitError::Backpressure`] carrying a retry-after
//! hint derived from the measured drain rate. Producers never block —
//! an open-loop client past saturation sees explicit rejections, not an
//! unbounded queue.
//!
//! **Adaptive micro-batching.** Each rank worker takes *everything*
//! queued up to `ServeConfig::max_batch` in one lock acquisition, then
//! runs one aggregate-lookups prefetch round for the whole micro-batch.
//! Under light load batches degenerate to single requests (lowest
//! latency); as load grows the batch size grows with the queue, so the
//! per-owner round trips of the PR-1 aggregation amortize over more and
//! more requests — the same messages serve a bigger batch.
//!
//! **Faults.** The worker loop contains no collectives, so a killed or
//! stalled rank can never wedge the queue: its own requests degrade
//! through the PR-4 deadline/retry/degrade protocol (absent-everywhere
//! answers), and the surviving ranks keep draining. The only
//! collectives are at startup (snapshot load) and shutdown (one final
//! barrier before the comm threads are released) — both are reliable
//! under every fault the plan can inject except a stall, which merely
//! delays them.

use crate::engine::{ConfigError, EngineConfig, EngineError};
use crate::engine_mt::{comm_thread, root_cause, DistAccess, ServedCounts};
use crate::owner::OwnerMap;
use crate::report::LookupStats;
use crate::snapshot;
use crate::spectrum::{build_distributed, derive_heuristic_tables, BuildStats, RankTables};
use dnaseq::Read;
use mpisim::{Comm, Universe};
use reptile::{correct_read, CorrectionStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission-queue and micro-batching knobs of a [`ServeEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// The queue's high-water mark *and* hard bound: `submit` rejects
    /// with backpressure once this many requests are waiting.
    pub queue_depth: usize,
    /// Most requests a worker coalesces into one micro-batch (one
    /// owner-batched prefetch round trip).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { queue_depth: 4096, max_batch: 256 }
    }
}

/// Why a [`ServeEngine::submit`] was not admitted. Both variants hand
/// the read back (like `mpsc::TrySendError`) so a retry needs no clone.
#[derive(Clone, Debug)]
pub enum SubmitError {
    /// The queue is at its high-water mark. Retry no sooner than
    /// `retry_after` (estimated from the measured drain rate).
    Backpressure {
        /// The rejected read, returned to the caller.
        read: Read,
        /// Requests waiting when the submission was rejected.
        queue_len: usize,
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// The engine is shutting down (or failed at startup); no further
    /// admissions.
    Closed(Read),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { queue_len, retry_after, .. } => {
                write!(f, "admission queue full ({queue_len} waiting); retry after {retry_after:?}")
            }
            SubmitError::Closed(_) => write!(f, "serve engine is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One corrected request, with its latency accounting.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Caller-supplied trace id, echoed verbatim.
    pub trace_id: u64,
    /// The corrected read.
    pub read: Read,
    /// Time spent waiting in the admission queue (enqueue → dequeue).
    pub queue: Duration,
    /// Time from dequeue to this request's correction finishing
    /// (includes its share of the micro-batch prefetch and the requests
    /// corrected before it in the same batch).
    pub service: Duration,
    /// Size of the micro-batch this request rode in.
    pub batch_len: usize,
    /// Whether any lookup this request's micro-batch depended on
    /// degraded to "absent everywhere" (fault plan active). Batch-level
    /// attribution: a degraded prefetch round marks every request in
    /// the batch.
    pub degraded: bool,
}

/// Lifetime totals of a [`ServeEngine`], returned by
/// [`ServeEngine::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Submissions rejected with backpressure.
    pub rejected: u64,
    /// Requests corrected and completed.
    pub completed: u64,
    /// Micro-batches processed across all ranks.
    pub batches: u64,
    /// Errors corrected across all requests.
    pub errors_corrected: u64,
    /// Lookup-protocol counters merged across ranks (including the
    /// comm-thread serve counts).
    pub lookups: LookupStats,
    /// Snapshot bytes read at startup (0 when built from seed reads).
    pub snapshot_bytes_read: u64,
    /// Reed-Solomon repair work performed across ranks while loading a
    /// degraded snapshot at startup (all-zero on clean starts; requires
    /// a `Repair` recovery policy in the config).
    pub repair: specstore::RepairStats,
    /// Engine lifetime, start of serving to shutdown.
    pub uptime_secs: f64,
    /// Responses completed but never drained before shutdown.
    pub responses: Vec<ServeResponse>,
}

impl ServeReport {
    /// Mean micro-batch size over the engine's lifetime — the
    /// adaptive-batching outcome (1.0 under light load, growing with
    /// saturation).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }
}

/// A queued request: the trace id and admission stamp ride with the
/// read through the queue.
struct QueuedRequest {
    trace_id: u64,
    enqueued: Instant,
    read: Read,
}

/// Queue state guarded by one mutex: the deque and the closed flag are
/// read together by workers, so admission-vs-drain races cannot strand
/// a request (a request admitted before close is visibly non-empty to
/// at least one worker's exit check).
struct QueueState {
    deque: VecDeque<QueuedRequest>,
    closed: bool,
}

/// Startup handshake between `start()` and the rank threads.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Startup {
    Pending,
    Ready,
    Failed,
}

/// State shared by the client handle, the driver thread and every rank
/// worker.
struct Shared {
    queue_depth: usize,
    max_batch: usize,
    queue: Mutex<QueueState>,
    /// Signals workers on admission and close.
    notify: Condvar,
    completed: Mutex<Vec<ServeResponse>>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    done: AtomicU64,
    /// EWMA of per-request wall time (ns) across recent micro-batches;
    /// feeds the backpressure retry-after hint.
    ewma_ns: AtomicU64,
    startup: Mutex<Startup>,
    startup_cv: Condvar,
}

impl Shared {
    fn mark(&self, s: Startup) {
        *self.startup.lock().expect("startup lock") = s;
        self.startup_cv.notify_all();
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("queue lock");
        q.closed = true;
        drop(q);
        self.notify.notify_all();
    }
}

/// Per-rank lifetime summary returned by the rank threads at shutdown.
struct RankDone {
    lookups: LookupStats,
    correction: CorrectionStats,
    requests: u64,
    batches: u64,
    snapshot_bytes_read: u64,
    repair: specstore::RepairStats,
}

/// A persistent, long-lived correction service over `np` rank threads.
///
/// Construction ([`ServeEngine::start`]) pays the whole setup cost —
/// thread spawn, snapshot load (or distributed build from seed reads),
/// heuristic side-table derivation — exactly once; after that each
/// correction request costs only its own lookups. Dropping the engine
/// without calling [`ServeEngine::shutdown`] closes the queue and joins
/// the ranks (discarding the report).
pub struct ServeEngine {
    shared: Arc<Shared>,
    driver: Option<std::thread::JoinHandle<Result<Vec<RankDone>, EngineError>>>,
    started: Instant,
}

impl ServeEngine {
    /// Start the service: spawn the universe, load the snapshot (when
    /// `cfg.load_spectrum` is set) or build the spectrum from
    /// `seed_reads`, and block until every rank is ready to serve.
    /// Startup failures (bad snapshot, invalid config) surface here,
    /// not on the first submit.
    pub fn start(
        cfg: EngineConfig,
        serve: ServeConfig,
        seed_reads: Vec<Read>,
    ) -> Result<ServeEngine, EngineError> {
        cfg.validate()?;
        cfg.params.assert_valid();
        if serve.queue_depth == 0 {
            return Err(ConfigError::Heuristics("serve queue_depth must be at least 1".into()))?;
        }
        if serve.max_batch == 0 {
            return Err(ConfigError::Heuristics("serve max_batch must be at least 1".into()))?;
        }
        // The service has no fixed read set, so read-set-derived
        // heuristics cannot apply to it.
        let h = &cfg.heuristics;
        if h.keep_read_tables || h.cache_remote || h.batch_reads || h.steal_chunks {
            return Err(ConfigError::Heuristics(
                "serve mode has no per-run read set: read-tables, cache-remote, batch-reads \
                 and steal are unsupported"
                    .into(),
            ))?;
        }
        if h.hot_shard_k > 0 {
            return Err(ConfigError::Heuristics(
                "serve mode cannot sample request skew at startup: hot-shards is unsupported"
                    .into(),
            ))?;
        }
        let shared = Arc::new(Shared {
            queue_depth: serve.queue_depth,
            max_batch: serve.max_batch,
            queue: Mutex::new(QueueState { deque: VecDeque::new(), closed: false }),
            notify: Condvar::new(),
            completed: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            done: AtomicU64::new(0),
            // seed the drain-rate estimate at 5µs/request until measured
            ewma_ns: AtomicU64::new(5_000),
            startup: Mutex::new(Startup::Pending),
            startup_cv: Condvar::new(),
        });
        let started = Instant::now();
        let driver = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let universe =
                    Universe::with_topology(cfg.np, cfg.topology).with_fault_plan(cfg.fault);
                let per_rank: Vec<Result<RankDone, EngineError>> =
                    universe.run(|comm| serve_rank(comm, &cfg, &seed_reads, &shared));
                let out = root_cause(per_rank);
                if out.is_err() {
                    // no rank reached the ready barrier; unblock start()
                    shared.mark(Startup::Failed);
                    shared.close();
                }
                out
            })
        };
        // Block until the ranks pass the post-load barrier (or fail
        // collectively), so snapshot errors are synchronous.
        let mut state = shared.startup.lock().expect("startup lock");
        while *state == Startup::Pending {
            state = shared.startup_cv.wait(state).expect("startup wait");
        }
        let failed = *state == Startup::Failed;
        drop(state);
        let mut engine = ServeEngine { shared, driver: Some(driver), started };
        if failed {
            let err = match engine.join_driver() {
                Err(e) => e,
                // unreachable in practice: Failed is only marked on Err
                Ok(_) => ConfigError::Heuristics("serve startup failed".into()).into(),
            };
            return Err(err);
        }
        Ok(engine)
    }

    /// Submit one read for correction. Non-blocking: past the
    /// high-water mark the request is rejected with a retry-after hint
    /// instead of queuing unboundedly.
    pub fn submit(&self, trace_id: u64, read: Read) -> Result<(), SubmitError> {
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.closed {
            return Err(SubmitError::Closed(read));
        }
        let len = q.deque.len();
        if len >= self.shared.queue_depth {
            drop(q);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            let per_req = self.shared.ewma_ns.load(Ordering::Relaxed);
            return Err(SubmitError::Backpressure {
                read,
                queue_len: len,
                retry_after: Duration::from_nanos(per_req.saturating_mul(len as u64 / 4 + 1)),
            });
        }
        q.deque.push_back(QueuedRequest { trace_id, enqueued: Instant::now(), read });
        drop(q);
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.notify.notify_one();
        Ok(())
    }

    /// Requests currently waiting for a worker.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").deque.len()
    }

    /// Requests corrected so far (engine lifetime).
    pub fn completed_count(&self) -> u64 {
        self.shared.done.load(Ordering::Relaxed)
    }

    /// Take every completed response accumulated since the last drain.
    pub fn drain(&self) -> Vec<ServeResponse> {
        std::mem::take(&mut *self.shared.completed.lock().expect("completed lock"))
    }

    /// Close the queue, drain the in-flight requests, join the ranks
    /// and return the lifetime report (plus any undrained responses).
    pub fn shutdown(mut self) -> Result<ServeReport, EngineError> {
        self.shared.close();
        let ranks = self.join_driver()?;
        let mut report = ServeReport {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.done.load(Ordering::Relaxed),
            uptime_secs: self.started.elapsed().as_secs_f64(),
            responses: self.drain(),
            ..ServeReport::default()
        };
        for r in ranks {
            report.batches += r.batches;
            report.errors_corrected += r.correction.errors_corrected;
            report.lookups.merge(&r.lookups);
            report.snapshot_bytes_read += r.snapshot_bytes_read;
            report.repair.merge(&r.repair);
            debug_assert!(r.requests <= report.completed);
        }
        Ok(report)
    }

    fn join_driver(&mut self) -> Result<Vec<RankDone>, EngineError> {
        match self.driver.take() {
            Some(h) => h.join().expect("serve driver panicked"),
            None => Ok(Vec::new()),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if self.driver.is_some() {
            self.shared.close();
            let _ = self.join_driver();
        }
    }
}

/// How long a worker sleeps on an empty queue before re-checking the
/// closed flag — a backstop only; admissions and close both signal the
/// condvar.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// EWMA weight (percent) of the newest micro-batch's per-request time.
const EWMA_NEW_PCT: u64 = 20;

/// The per-rank serve loop: load/build once, then pull micro-batches
/// off the shared admission queue until the engine closes. Collective
/// structure: snapshot load (or build) + one barrier at startup, one
/// barrier at shutdown — nothing per request, so no rank can block
/// another through the queue.
fn serve_rank(
    comm: &Comm,
    cfg: &EngineConfig,
    seed_reads: &[Read],
    shared: &Shared,
) -> Result<RankDone, EngineError> {
    let me = comm.rank();
    let np = comm.size();
    // --- build-once: snapshot load or distributed build ---
    let (tables, snapshot_bytes_read, repair): (RankTables, u64, specstore::RepairStats) =
        if let Some(dir) = &cfg.load_spectrum {
            let chop = cfg.fault.snapshot_chop_for(me);
            let loaded = snapshot::load_snapshot(comm, dir, &cfg.params, cfg.recovery, chop)?;
            let owners = OwnerMap::new(np, &cfg.params);
            let (tables, _) = derive_heuristic_tables(
                comm,
                owners,
                &cfg.params,
                &cfg.heuristics,
                loaded.kmers,
                loaded.tiles,
                Vec::new(),
                Vec::new(),
                BuildStats::default(),
            );
            (tables, loaded.bytes_read, loaded.repair)
        } else {
            // Step-I analog for the seed corpus: contiguous slices.
            let lo = seed_reads.len() * me / np;
            let hi = seed_reads.len() * (me + 1) / np;
            let mine = seed_reads[lo..hi].to_vec();
            let (tables, _) = build_distributed(
                comm,
                &mine,
                cfg.chunk_size,
                &cfg.params,
                &cfg.heuristics,
                cfg.build_threads.max(1),
            );
            (tables, 0, Default::default())
        };
    comm.barrier();
    if me == 0 {
        shared.mark(Startup::Ready);
    }

    // --- serve loop: the PR-4 service plane, kept warm ---
    let mut done = RankDone {
        lookups: LookupStats::default(),
        correction: CorrectionStats::default(),
        requests: 0,
        batches: 0,
        snapshot_bytes_read,
        repair,
    };
    let shutdown = AtomicBool::new(false);
    let service_plane = cfg.heuristics.needs_service_plane(np);
    let mut served = ServedCounts::default();
    std::thread::scope(|s| {
        let server = service_plane.then(|| {
            s.spawn(|| {
                comm_thread(
                    comm,
                    &tables.hash_kmers,
                    &tables.hash_tiles,
                    cfg.heuristics.universal,
                    None,
                    &shutdown,
                )
            })
        });
        // Hoisted per-run scratch (the old per-job serve loop rebuilt
        // all of this for every batch file): the lookup chain with its
        // prefetch maps and wire buffers, plus the micro-batch staging
        // vectors, all reused for the engine's lifetime.
        let mut access = DistAccess::for_tables(comm, &tables, cfg);
        let mut meta: Vec<(u64, Instant)> = Vec::with_capacity(shared.max_batch);
        let mut reads: Vec<Read> = Vec::with_capacity(shared.max_batch);
        let mut stamps: Vec<(Duration, bool)> = Vec::with_capacity(shared.max_batch);
        loop {
            meta.clear();
            reads.clear();
            stamps.clear();
            {
                let mut q = shared.queue.lock().expect("queue lock");
                while q.deque.is_empty() && !q.closed {
                    let (guard, _) =
                        shared.notify.wait_timeout(q, WORKER_POLL).expect("queue wait");
                    q = guard;
                }
                if q.deque.is_empty() {
                    break; // closed and drained
                }
                // adaptive micro-batch: everything queued, capped
                let n = q.deque.len().min(shared.max_batch);
                for qr in q.deque.drain(..n) {
                    meta.push((qr.trace_id, qr.enqueued));
                    reads.push(qr.read);
                }
            }
            let dequeued = Instant::now();
            let deg0 = access.stats.keys_degraded;
            if cfg.heuristics.aggregate_lookups {
                access.prefetch(&reads, &cfg.params);
            }
            let batch_degraded = access.stats.keys_degraded > deg0;
            for read in reads.iter_mut() {
                let before = access.stats.keys_degraded;
                let outcome = correct_read(read, &mut access, &cfg.params);
                done.correction.absorb(&outcome);
                stamps.push((
                    dequeued.elapsed(),
                    batch_degraded || access.stats.keys_degraded > before,
                ));
            }
            let n = reads.len();
            let per_req_ns = (dequeued.elapsed().as_nanos() as u64 / n as u64).max(1);
            let old = shared.ewma_ns.load(Ordering::Relaxed);
            shared.ewma_ns.store(
                (old * (100 - EWMA_NEW_PCT) + per_req_ns * EWMA_NEW_PCT) / 100,
                Ordering::Relaxed,
            );
            {
                let mut completed = shared.completed.lock().expect("completed lock");
                completed.reserve(n);
                for ((read, (trace_id, enqueued)), (service, degraded)) in
                    reads.drain(..).zip(meta.drain(..)).zip(stamps.drain(..))
                {
                    completed.push(ServeResponse {
                        trace_id,
                        read,
                        queue: dequeued.duration_since(enqueued),
                        service,
                        batch_len: n,
                        degraded,
                    });
                }
            }
            shared.done.fetch_add(n as u64, Ordering::Relaxed);
            done.requests += n as u64;
            done.batches += 1;
        }
        // Same termination as run_rank: after the barrier no rank can
        // issue another first-hand lookup, so the comm threads drain
        // stragglers and exit on their first quiet poll.
        comm.barrier();
        shutdown.store(true, Ordering::Release);
        done.lookups = std::mem::take(&mut access.stats);
        if let Some(server) = server {
            served = server.join().expect("serve comm thread panicked");
        }
    });
    done.lookups.requests_served = served.keys;
    done.lookups.batches_served = served.batches;
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine_mt::run_distributed;
    use crate::heuristics::HeuristicConfig;
    use reptile::ReptileParams;

    fn params() -> ReptileParams {
        ReptileParams { k: 6, tile_overlap: 3, ..ReptileParams::for_tests() }
    }

    fn dataset(n: usize) -> Vec<Read> {
        let genome: Vec<u8> =
            (0..400).map(|i| [b'A', b'C', b'G', b'T'][(i * 7 + i / 3) % 4]).collect();
        let mut reads = Vec::new();
        for i in 0..n {
            let start = (i * 13) % (genome.len() - 40);
            let mut seq = genome[start..start + 40].to_vec();
            let mut qual = vec![35u8; 40];
            if i % 3 == 0 {
                let pos = 5 + (i % 30);
                seq[pos] = match seq[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
                qual[pos] = 6;
            }
            reads.push(Read::new(i as u64 + 1, seq, qual));
        }
        reads
    }

    /// Submit every read, tolerating backpressure, and drain until all
    /// are back; returns responses sorted by trace id.
    fn serve_all(engine: &ServeEngine, reads: &[Read]) -> Vec<ServeResponse> {
        let mut out = Vec::with_capacity(reads.len());
        for r in reads {
            let mut pending = r.clone();
            loop {
                match engine.submit(r.id, pending) {
                    Ok(()) => break,
                    Err(SubmitError::Backpressure { read, retry_after, .. }) => {
                        out.extend(engine.drain());
                        std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                        pending = read;
                    }
                    Err(SubmitError::Closed(_)) => panic!("engine closed during submit"),
                }
            }
        }
        while out.len() < reads.len() {
            out.extend(engine.drain());
            std::thread::sleep(Duration::from_micros(200));
        }
        out.sort_unstable_by_key(|r| r.trace_id);
        out
    }

    /// Serve-mode corrections are bit-identical to a batch run with the
    /// same spectrum, across the serve-compatible heuristic matrix.
    #[test]
    fn serve_matches_batch_output() {
        let reads = dataset(60);
        let matrix = [
            HeuristicConfig::default(),
            HeuristicConfig { universal: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, universal: true, ..Default::default() },
            HeuristicConfig::replicate_both(),
            HeuristicConfig { partial_group: 2, ..Default::default() },
        ];
        for heur in matrix {
            for np in [1, 3] {
                let cfg = EngineConfig {
                    heuristics: heur,
                    chunk_size: 16,
                    build_threads: 2,
                    ..EngineConfig::new(np, params())
                };
                let batch = run_distributed(&cfg, &reads);
                let engine = ServeEngine::start(
                    cfg,
                    ServeConfig { queue_depth: 32, max_batch: 8 },
                    reads.clone(),
                )
                .expect("serve start");
                let responses = serve_all(&engine, &reads);
                let report = engine.shutdown().expect("serve shutdown");
                assert_eq!(responses.len(), reads.len());
                for (resp, want) in responses.iter().zip(&batch.corrected) {
                    assert_eq!(resp.read, *want, "serve != batch ({}, np={np})", heur.label());
                    assert!(!resp.degraded, "fault-free serve degraded a request");
                    assert!(resp.batch_len >= 1 && resp.batch_len <= 8);
                }
                assert_eq!(report.completed, reads.len() as u64);
                assert_eq!(report.accepted, reads.len() as u64);
                assert!(report.batches > 0 && report.mean_batch() >= 1.0);
            }
        }
    }

    /// The queue is bounded: a burst larger than the high-water mark is
    /// rejected with a usable retry-after, and every admitted request
    /// still completes.
    #[test]
    fn backpressure_bounds_the_queue() {
        let reads = dataset(120);
        let cfg = EngineConfig {
            heuristics: HeuristicConfig { aggregate_lookups: true, ..Default::default() },
            ..EngineConfig::new(2, params())
        };
        let serve = ServeConfig { queue_depth: 8, max_batch: 4 };
        let engine = ServeEngine::start(cfg, serve, reads.clone()).expect("serve start");
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for r in &reads {
            match engine.submit(r.id, r.clone()) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Backpressure { read, queue_len, retry_after }) => {
                    rejected += 1;
                    assert_eq!(read, *r, "rejection must hand the read back");
                    assert!(queue_len >= serve.queue_depth);
                    assert!(retry_after > Duration::ZERO);
                }
                Err(SubmitError::Closed(_)) => panic!("engine closed early"),
            }
            assert!(engine.queue_len() <= serve.queue_depth, "queue exceeded its bound");
        }
        let mut responses = Vec::new();
        while (responses.len() as u64) < accepted {
            responses.extend(engine.drain());
            std::thread::sleep(Duration::from_micros(200));
        }
        let report = engine.shutdown().expect("serve shutdown");
        assert_eq!(report.accepted, accepted);
        assert_eq!(report.rejected, rejected);
        assert_eq!(report.completed, accepted);
        // a burst of 120 into a depth-8 queue must trip the mark at
        // least once unless the workers drained absurdly fast; either
        // way the accounting above must balance
        assert_eq!(accepted + rejected, reads.len() as u64);
    }

    /// Submitting after shutdown is a typed Closed error, not a hang.
    #[test]
    fn startup_failure_is_synchronous() {
        let dir =
            std::env::temp_dir().join(format!("reptile-serve-missing-{}", std::process::id()));
        let cfg = EngineConfig { load_spectrum: Some(dir), ..EngineConfig::new(2, params()) };
        let err = match ServeEngine::start(cfg, ServeConfig::default(), Vec::new()) {
            Err(e) => e,
            Ok(_) => panic!("start must fail on a missing snapshot"),
        };
        assert!(matches!(err, EngineError::Snapshot(_)), "got {err}");
    }

    /// Serve-incompatible heuristics are rejected up front.
    #[test]
    fn rejects_read_set_heuristics() {
        for heur in [
            HeuristicConfig { keep_read_tables: true, ..Default::default() },
            HeuristicConfig { steal_chunks: true, ..Default::default() },
            HeuristicConfig { batch_reads: true, ..Default::default() },
            HeuristicConfig { hot_shard_k: 2, ..Default::default() },
        ] {
            let cfg = EngineConfig { heuristics: heur, ..EngineConfig::new(2, params()) };
            assert!(matches!(
                ServeEngine::start(cfg, ServeConfig::default(), dataset(8)),
                Err(EngineError::Config(ConfigError::Heuristics(_)))
            ));
        }
        let cfg = EngineConfig::new(2, params());
        assert!(ServeEngine::start(cfg, ServeConfig { queue_depth: 0, max_batch: 1 }, dataset(8))
            .is_err());
    }

    /// Dropping the engine without shutdown() must not hang or leak the
    /// rank threads.
    #[test]
    fn drop_without_shutdown_joins() {
        let reads = dataset(20);
        let cfg = EngineConfig::new(2, params());
        let engine = ServeEngine::start(cfg, ServeConfig::default(), reads.clone()).expect("start");
        engine.submit(1, reads[0].clone()).expect("submit");
        drop(engine);
    }
}
