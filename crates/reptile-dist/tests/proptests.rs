//! Property tests for the distributed engines: on arbitrary read pools
//! and rank counts, the threaded and virtual engines must both reproduce
//! the sequential corrector's output exactly.

use mpisim::Universe;
use proptest::prelude::*;
use reptile::{correct_dataset, KmerSpectrum, ReptileParams, TileSpectrum};
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::spectrum::{build_distributed, build_distributed_serial, BuildStats, RankTables};
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};

fn params() -> ReptileParams {
    ReptileParams {
        k: 6,
        tile_overlap: 3,
        kmer_threshold: 2,
        tile_threshold: 2,
        ..ReptileParams::default()
    }
}

fn read_pool() -> impl Strategy<Value = Vec<dnaseq::Read>> {
    // templates with occasional point mutations, mixed coverage
    let base = prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 15..35);
    prop::collection::vec((base, 2usize..6, any::<u16>()), 2..6).prop_map(|specs| {
        let mut reads = Vec::new();
        let mut id = 1u64;
        for (template, copies, mutseed) in specs {
            for c in 0..copies {
                let mut seq = template.clone();
                let mut qual = vec![32u8; seq.len()];
                // mutate one base of one copy, low quality
                if c == 0 && !seq.is_empty() {
                    let pos = (mutseed as usize) % seq.len();
                    let cur = seq[pos];
                    seq[pos] = match cur {
                        b'A' => b'C',
                        b'C' => b'G',
                        b'G' => b'T',
                        _ => b'A',
                    };
                    qual[pos] = 4;
                }
                reads.push(dnaseq::Read::new(id, seq, qual));
                id += 1;
            }
        }
        reads
    })
}

fn kmer_entries(s: &KmerSpectrum) -> Vec<(u64, u32)> {
    let mut v: Vec<_> = s.iter().collect();
    v.sort_unstable();
    v
}

fn tile_entries(s: &TileSpectrum) -> Vec<(u128, u32)> {
    let mut v: Vec<_> = s.iter().collect();
    v.sort_unstable();
    v
}

/// Everything bit-identity covers: every table (owned, reads,
/// replicated, group) as a sorted entry list, plus the byte-accurate
/// memory accounting.
type TableFingerprint = (
    Vec<(u64, u32)>,
    Vec<(u128, u32)>,
    Option<Vec<(u64, u32)>>,
    Option<Vec<(u128, u32)>>,
    Option<Vec<(u64, u32)>>,
    Option<Vec<(u128, u32)>>,
    Option<Vec<(u64, u32)>>,
    Option<Vec<(u128, u32)>>,
    u64,
);

fn fingerprint(t: &RankTables) -> TableFingerprint {
    (
        kmer_entries(&t.hash_kmers),
        tile_entries(&t.hash_tiles),
        t.reads_kmers.as_ref().map(kmer_entries),
        t.reads_tiles.as_ref().map(tile_entries),
        t.replicated_kmers.as_ref().map(kmer_entries),
        t.replicated_tiles.as_ref().map(tile_entries),
        t.group_kmers.as_ref().map(kmer_entries),
        t.group_tiles.as_ref().map(tile_entries),
        t.memory_bytes(),
    )
}

/// Zero the wall-clock fields: timings legitimately differ between the
/// serial and the pipelined builder, every other counter must not.
fn no_timing(s: BuildStats) -> BuildStats {
    BuildStats { extract_ns: 0, exchange_ns: 0, overlap_ns: 0, ..s }
}

fn build_fingerprints(
    reads: &[dnaseq::Read],
    np: usize,
    chunk: usize,
    heur: HeuristicConfig,
    threads: Option<usize>,
) -> Vec<(TableFingerprint, BuildStats)> {
    let p = params();
    Universe::new(np).run(move |comm| {
        let mine: Vec<dnaseq::Read> = reads
            .iter()
            .enumerate()
            .filter(|(i, _)| i % np == comm.rank())
            .map(|(_, r)| r.clone())
            .collect();
        let (tables, stats) = match threads {
            None => build_distributed_serial(comm, &mine, chunk, &p, &heur),
            Some(t) => build_distributed(comm, &mine, chunk, &p, &heur, t),
        };
        (fingerprint(&tables), no_timing(stats))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_matches_sequential(reads in read_pool(), np in 1usize..6) {
        let p = params();
        let (seq, _) = correct_dataset(&reads, &p);
        let out = run_distributed(&EngineConfig::new(np, p), &reads);
        prop_assert_eq!(out.corrected, seq);
    }

    #[test]
    fn virtual_matches_sequential(reads in read_pool(), np in 1usize..200) {
        let p = params();
        let (seq, _) = correct_dataset(&reads, &p);
        let run = run_virtual(&EngineConfig::virtual_cluster(np, p), &reads);
        prop_assert_eq!(run.corrected, seq);
    }

    #[test]
    fn heuristics_never_change_output(
        reads in read_pool(),
        universal in any::<bool>(),
        batch in any::<bool>(),
        balance in any::<bool>(),
        partial in 1usize..4,
    ) {
        let p = params();
        let heur = HeuristicConfig {
            universal,
            batch_reads: batch,
            load_balance: balance,
            partial_group: partial,
            ..HeuristicConfig::default()
        };
        prop_assume!(heur.validate().is_ok());
        let (seq, _) = correct_dataset(&reads, &p);
        let mut cfg = EngineConfig::new(3, p);
        cfg.heuristics = heur;
        cfg.chunk_size = 4;
        let out = run_distributed(&cfg, &reads);
        prop_assert_eq!(out.corrected, seq);
    }

    /// The pipelined builder (threaded fused extraction, per-owner
    /// pre-aggregation, double-buffered exchange) must be bit-identical
    /// to the serial reference: same tables (all of them, including the
    /// optional reads/replicated/group spectra), same byte accounting,
    /// same deterministic counters — across thread counts, chunk sizes,
    /// rank counts and every heuristic combination in the matrix.
    #[test]
    fn pipelined_build_bit_identical_to_serial(
        reads in read_pool(),
        np in prop::sample::select(vec![1usize, 3, 4]),
        threads in prop::sample::select(vec![1usize, 2, 4]),
        chunk in prop::sample::select(vec![3usize, 7, 64]),
        heur_idx in 0usize..HeuristicConfig::construction_matrix().len(),
    ) {
        let heur = HeuristicConfig::construction_matrix()[heur_idx];
        prop_assume!(heur.validate().is_ok());
        let serial = build_fingerprints(&reads, np, chunk, heur, None);
        let piped = build_fingerprints(&reads, np, chunk, heur, Some(threads));
        prop_assert_eq!(serial, piped, "heur={} np={} threads={} chunk={}",
                        heur.label(), np, threads, chunk);
    }

    /// Conservation: every input read appears exactly once in the output
    /// with the same id, length and qualities.
    #[test]
    fn reads_conserved(reads in read_pool(), np in 1usize..5) {
        let p = params();
        let out = run_distributed(&EngineConfig::new(np, p), &reads);
        prop_assert_eq!(out.corrected.len(), reads.len());
        for (a, b) in out.corrected.iter().zip(&reads) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(&a.qual, &b.qual);
        }
    }
}
