//! Property tests for the distributed engines: on arbitrary read pools
//! and rank counts, the threaded and virtual engines must both reproduce
//! the sequential corrector's output exactly.

use proptest::prelude::*;
use reptile::{correct_dataset, ReptileParams};
use reptile_dist::engine_virtual::{run_virtual, VirtualConfig};
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};

fn params() -> ReptileParams {
    ReptileParams {
        k: 6,
        tile_overlap: 3,
        kmer_threshold: 2,
        tile_threshold: 2,
        ..ReptileParams::default()
    }
}

fn read_pool() -> impl Strategy<Value = Vec<dnaseq::Read>> {
    // templates with occasional point mutations, mixed coverage
    let base = prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 15..35);
    prop::collection::vec((base, 2usize..6, any::<u16>()), 2..6).prop_map(|specs| {
        let mut reads = Vec::new();
        let mut id = 1u64;
        for (template, copies, mutseed) in specs {
            for c in 0..copies {
                let mut seq = template.clone();
                let mut qual = vec![32u8; seq.len()];
                // mutate one base of one copy, low quality
                if c == 0 && !seq.is_empty() {
                    let pos = (mutseed as usize) % seq.len();
                    let cur = seq[pos];
                    seq[pos] = match cur {
                        b'A' => b'C',
                        b'C' => b'G',
                        b'G' => b'T',
                        _ => b'A',
                    };
                    qual[pos] = 4;
                }
                reads.push(dnaseq::Read::new(id, seq, qual));
                id += 1;
            }
        }
        reads
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_matches_sequential(reads in read_pool(), np in 1usize..6) {
        let p = params();
        let (seq, _) = correct_dataset(&reads, &p);
        let out = run_distributed(&EngineConfig::new(np, p), &reads);
        prop_assert_eq!(out.corrected, seq);
    }

    #[test]
    fn virtual_matches_sequential(reads in read_pool(), np in 1usize..200) {
        let p = params();
        let (seq, _) = correct_dataset(&reads, &p);
        let run = run_virtual(&VirtualConfig::new(np, p), &reads);
        prop_assert_eq!(run.corrected, seq);
    }

    #[test]
    fn heuristics_never_change_output(
        reads in read_pool(),
        universal in any::<bool>(),
        batch in any::<bool>(),
        balance in any::<bool>(),
        partial in 1usize..4,
    ) {
        let p = params();
        let heur = HeuristicConfig {
            universal,
            batch_reads: batch,
            load_balance: balance,
            partial_group: partial,
            ..HeuristicConfig::default()
        };
        prop_assume!(heur.validate().is_ok());
        let (seq, _) = correct_dataset(&reads, &p);
        let mut cfg = EngineConfig::new(3, p);
        cfg.heuristics = heur;
        cfg.chunk_size = 4;
        let out = run_distributed(&cfg, &reads);
        prop_assert_eq!(out.corrected, seq);
    }

    /// Conservation: every input read appears exactly once in the output
    /// with the same id, length and qualities.
    #[test]
    fn reads_conserved(reads in read_pool(), np in 1usize..5) {
        let p = params();
        let out = run_distributed(&EngineConfig::new(np, p), &reads);
        prop_assert_eq!(out.corrected.len(), reads.len());
        for (a, b) in out.corrected.iter().zip(&reads) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(&a.qual, &b.qual);
        }
    }
}
