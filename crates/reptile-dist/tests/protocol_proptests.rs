//! Property tests for the correction-phase wire protocol: single-key
//! requests (tagged and universal) and the aggregate-mode batch
//! request/response pair must round-trip for arbitrary key mixes.

use proptest::prelude::*;
use reptile_dist::protocol::{
    decode_response, encode_response, BatchRequest, BatchResponse, LookupRequest, MAX_BATCH_KEYS,
    TAG_BATCH_REQ, TAG_BATCH_RESP, TAG_UNIVERSAL,
};

fn lookup_request() -> impl Strategy<Value = LookupRequest> {
    prop_oneof![
        any::<u64>().prop_map(LookupRequest::Kmer),
        any::<u128>().prop_map(LookupRequest::Tile),
    ]
}

/// Wire counts: any non-negative `i64` plus the `-1` sentinel.
fn wire_count() -> impl Strategy<Value = i64> {
    prop_oneof![Just(-1i64), 0..=i64::MAX]
}

proptest! {
    #[test]
    fn tagged_encoding_round_trips(req in lookup_request()) {
        let (tag, payload) = req.encode_tagged();
        prop_assert_eq!(LookupRequest::decode(tag, &payload), req);
        prop_assert_eq!(payload.len(), req.wire_bytes(false));
    }

    #[test]
    fn universal_encoding_round_trips(req in lookup_request()) {
        let (tag, payload) = req.encode_universal();
        prop_assert_eq!(tag, TAG_UNIVERSAL);
        prop_assert_eq!(LookupRequest::decode(tag, &payload), req);
        prop_assert_eq!(payload.len(), req.wire_bytes(true));
    }

    #[test]
    fn response_round_trips(count in proptest::option::of(any::<u32>())) {
        prop_assert_eq!(decode_response(&encode_response(count)), count);
    }

    #[test]
    fn batch_request_round_trips(
        kmers in prop::collection::vec(any::<u64>(), 0..50),
        tiles in prop::collection::vec(any::<u128>(), 0..50),
    ) {
        let req = BatchRequest { kmers, tiles };
        let (tag, payload) = req.encode();
        prop_assert_eq!(tag, TAG_BATCH_REQ);
        prop_assert_eq!(payload.len(), req.wire_bytes());
        prop_assert_eq!(BatchRequest::decode(&payload), req);
    }

    #[test]
    fn batch_response_round_trips(
        kmer_counts in prop::collection::vec(wire_count(), 0..50),
        tile_counts in prop::collection::vec(wire_count(), 0..50),
    ) {
        let resp = BatchResponse { kmer_counts, tile_counts };
        let (tag, payload) = resp.encode();
        prop_assert_eq!(tag, TAG_BATCH_RESP);
        prop_assert_eq!(payload.len(), resp.wire_bytes());
        prop_assert_eq!(BatchResponse::decode(&payload), resp);
    }

    /// Splitting a batch at any point and re-joining the decoded halves
    /// loses nothing — the invariant the prefetch splitter relies on.
    #[test]
    fn split_batches_cover_the_same_keys(
        kmers in prop::collection::vec(any::<u64>(), 0..40),
        tiles in prop::collection::vec(any::<u128>(), 0..40),
        cut in 0usize..81,
    ) {
        let cut_k = cut.min(kmers.len());
        let cut_t = cut.saturating_sub(kmers.len()).min(tiles.len());
        let first = BatchRequest {
            kmers: kmers[..cut_k].to_vec(),
            tiles: tiles[..cut_t].to_vec(),
        };
        let second = BatchRequest {
            kmers: kmers[cut_k..].to_vec(),
            tiles: tiles[cut_t..].to_vec(),
        };
        let a = BatchRequest::decode(&first.encode().1);
        let b = BatchRequest::decode(&second.encode().1);
        let rejoined: Vec<u64> = a.kmers.iter().chain(&b.kmers).copied().collect();
        let rejoined_t: Vec<u128> = a.tiles.iter().chain(&b.tiles).copied().collect();
        prop_assert_eq!(rejoined, kmers);
        prop_assert_eq!(rejoined_t, tiles);
    }
}

#[test]
fn empty_batch_round_trips() {
    let req = BatchRequest::default();
    assert!(req.is_empty());
    assert_eq!(BatchRequest::decode(&req.encode().1), req);
    let resp = BatchResponse::default();
    assert_eq!(BatchResponse::decode(&resp.encode().1), resp);
}

#[test]
fn max_batch_round_trips() {
    let req = BatchRequest {
        kmers: (0..MAX_BATCH_KEYS as u64 / 2).collect(),
        tiles: (0..MAX_BATCH_KEYS as u128 / 2).collect(),
    };
    assert_eq!(req.len(), MAX_BATCH_KEYS);
    assert_eq!(BatchRequest::decode(&req.encode().1), req);
}
