//! Property tests for the correction-phase wire protocol: single-key
//! requests (tagged and universal) and the aggregate-mode batch
//! request/response pair must round-trip for arbitrary key mixes —
//! including the sequence-number header every message carries so the
//! retry machinery can pair duplicated/reordered responses with their
//! requests and discard stale ones.

use proptest::prelude::*;
use reptile_dist::protocol::{
    decode_response, encode_response, BatchRequest, BatchResponse, LookupRequest, MAX_BATCH_KEYS,
    TAG_BATCH_REQ, TAG_BATCH_RESP, TAG_UNIVERSAL,
};

fn lookup_request() -> impl Strategy<Value = LookupRequest> {
    prop_oneof![
        any::<u64>().prop_map(LookupRequest::Kmer),
        any::<u128>().prop_map(LookupRequest::Tile),
    ]
}

/// Wire counts: any non-negative `i64` plus the `-1` sentinel.
fn wire_count() -> impl Strategy<Value = i64> {
    prop_oneof![Just(-1i64), 0..=i64::MAX]
}

proptest! {
    #[test]
    fn tagged_encoding_round_trips(req in lookup_request(), seq in any::<u64>()) {
        let (tag, payload) = req.encode_tagged(seq);
        prop_assert_eq!(LookupRequest::decode(tag, &payload), (seq, req));
        prop_assert_eq!(payload.len(), req.wire_bytes(false));
    }

    #[test]
    fn universal_encoding_round_trips(req in lookup_request(), seq in any::<u64>()) {
        let (tag, payload) = req.encode_universal(seq);
        prop_assert_eq!(tag, TAG_UNIVERSAL);
        prop_assert_eq!(LookupRequest::decode(tag, &payload), (seq, req));
        prop_assert_eq!(payload.len(), req.wire_bytes(true));
    }

    #[test]
    fn response_round_trips(seq in any::<u64>(), count in proptest::option::of(any::<u32>())) {
        prop_assert_eq!(decode_response(&encode_response(seq, count)), (seq, count));
    }

    /// A retry is a resend of the *same* seq: the encoder must be a pure
    /// function of (seq, request) so the duplicate is byte-identical and
    /// the server's answer to either copy satisfies the client.
    #[test]
    fn resends_are_byte_identical(req in lookup_request(), seq in any::<u64>()) {
        prop_assert_eq!(req.encode_tagged(seq), req.encode_tagged(seq));
        prop_assert_eq!(req.encode_universal(seq), req.encode_universal(seq));
    }

    /// The dedup header: distinct seqs must produce distinct wire bytes
    /// for the same logical request, or the client could not tell a stale
    /// response from a current one.
    #[test]
    fn seq_header_distinguishes_attempts(
        req in lookup_request(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(req.encode_tagged(a).1, req.encode_tagged(b).1);
        let (sa, _) = LookupRequest::decode(req.encode_tagged(a).0, &req.encode_tagged(a).1);
        prop_assert_eq!(sa, a);
    }

    #[test]
    fn batch_request_round_trips(
        seq in any::<u64>(),
        kmers in prop::collection::vec(any::<u64>(), 0..50),
        tiles in prop::collection::vec(any::<u128>(), 0..50),
    ) {
        let req = BatchRequest { kmers, tiles };
        let (tag, payload) = req.encode(seq);
        prop_assert_eq!(tag, TAG_BATCH_REQ);
        prop_assert_eq!(payload.len(), req.wire_bytes());
        prop_assert_eq!(BatchRequest::decode(&payload), (seq, req));
    }

    #[test]
    fn batch_response_round_trips(
        seq in any::<u64>(),
        kmer_counts in prop::collection::vec(wire_count(), 0..50),
        tile_counts in prop::collection::vec(wire_count(), 0..50),
    ) {
        let resp = BatchResponse { kmer_counts, tile_counts };
        let (tag, payload) = resp.encode(seq);
        prop_assert_eq!(tag, TAG_BATCH_RESP);
        prop_assert_eq!(payload.len(), resp.wire_bytes());
        prop_assert_eq!(BatchResponse::decode(&payload), (seq, resp));
    }

    /// Batch responses to different attempts carry their own seqs; the
    /// client's stash keys on the decoded seq, so it must survive the
    /// round trip regardless of payload shape.
    #[test]
    fn batch_seq_survives_any_payload(
        seq in any::<u64>(),
        counts in prop::collection::vec(wire_count(), 0..80),
    ) {
        let resp = BatchResponse { kmer_counts: counts, tile_counts: Vec::new() };
        let (decoded_seq, decoded) = BatchResponse::decode(&resp.encode(seq).1);
        prop_assert_eq!(decoded_seq, seq);
        prop_assert_eq!(decoded, resp);
    }

    /// Splitting a batch at any point and re-joining the decoded halves
    /// loses nothing — the invariant the prefetch splitter relies on.
    #[test]
    fn split_batches_cover_the_same_keys(
        kmers in prop::collection::vec(any::<u64>(), 0..40),
        tiles in prop::collection::vec(any::<u128>(), 0..40),
        cut in 0usize..81,
    ) {
        let cut_k = cut.min(kmers.len());
        let cut_t = cut.saturating_sub(kmers.len()).min(tiles.len());
        let first = BatchRequest {
            kmers: kmers[..cut_k].to_vec(),
            tiles: tiles[..cut_t].to_vec(),
        };
        let second = BatchRequest {
            kmers: kmers[cut_k..].to_vec(),
            tiles: tiles[cut_t..].to_vec(),
        };
        let (_, a) = BatchRequest::decode(&first.encode(1).1);
        let (_, b) = BatchRequest::decode(&second.encode(2).1);
        let rejoined: Vec<u64> = a.kmers.iter().chain(&b.kmers).copied().collect();
        let rejoined_t: Vec<u128> = a.tiles.iter().chain(&b.tiles).copied().collect();
        prop_assert_eq!(rejoined, kmers);
        prop_assert_eq!(rejoined_t, tiles);
    }
}

#[test]
fn empty_batch_round_trips() {
    let req = BatchRequest::default();
    assert!(req.is_empty());
    assert_eq!(BatchRequest::decode(&req.encode(0).1), (0, req));
    let resp = BatchResponse::default();
    assert_eq!(BatchResponse::decode(&resp.encode(0).1), (0, resp));
}

#[test]
fn max_batch_round_trips() {
    let req = BatchRequest {
        kmers: (0..MAX_BATCH_KEYS as u64 / 2).collect(),
        tiles: (0..MAX_BATCH_KEYS as u128 / 2).collect(),
    };
    assert_eq!(req.len(), MAX_BATCH_KEYS);
    assert_eq!(BatchRequest::decode(&req.encode(u64::MAX).1), (u64::MAX, req));
}
