//! The out-of-core build contract: with any valid memory budget, the
//! spill/merge build is *bit-identical* to the in-memory build — same
//! corrected reads, same table geometry — across rank counts and both
//! engines; and a corrupted run file fails the build with a typed error
//! instead of ever folding wrong counts into a table.

use mpisim::{FaultPlan, SnapshotChopSpec};
use proptest::prelude::*;
use reptile::ReptileParams;
use reptile_dist::engine_mt::{run_distributed, try_run_distributed};
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::{ooc, EngineConfig, EngineError, HeuristicConfig};

// k = 8 / overlap 4 puts the k-mers in a direct-count array (16 bits,
// never spills — the finish streams the array into the table) while the
// tiles (24 bits > DIRECT_BITS) buffer and spill: both out-of-core
// finish paths run in every test.
fn params() -> ReptileParams {
    ReptileParams {
        k: 8,
        tile_overlap: 4,
        kmer_threshold: 2,
        tile_threshold: 2,
        ..ReptileParams::default()
    }
}

/// The budget ladder the matrix runs: the validation floor (tight
/// enough to spill on real pools), a mid budget, and effectively
/// unlimited (exercises the ooc plumbing's zero-spill fast path).
fn budgets(p: &ReptileParams) -> [u64; 3] {
    let floor = ooc::min_budget(p);
    [floor, floor + (1 << 20), u64::MAX]
}

fn batched() -> HeuristicConfig {
    HeuristicConfig { batch_reads: true, ..HeuristicConfig::default() }
}

fn cfg_with_budget(np: usize, budget: Option<u64>) -> EngineConfig {
    let mut b = EngineConfig::builder(np, params()).chunk_size(16).heuristics(batched());
    if let Some(bytes) = budget {
        b = b.memory_budget(bytes);
    }
    b.build().expect("valid config")
}

/// Enough distinct sequence content that per-rank spill pressure
/// outgrows the floor budget's trigger and the build really spills:
/// 240 LCG-generated templates × 10 well-covered copies of 60 bp each
/// (the floor trigger sits at a quarter of `MIN_ACC_ROOM`, so the pool
/// must push well past 64 KiB of pending entries per rank).
fn heavy_pool() -> Vec<dnaseq::Read> {
    let mut rng = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng
    };
    let mut reads = Vec::new();
    let mut id = 1u64;
    for t in 0..240usize {
        let template: Vec<u8> = (0..60).map(|_| b"ACGT"[(next() >> 33) as usize % 4]).collect();
        for c in 0..10usize {
            let mut seq = template.clone();
            let mut qual = vec![32u8; seq.len()];
            // one low-quality mutation per template's first copy
            if c == 0 {
                let pos = (7 * t + 3) % seq.len();
                seq[pos] = match seq[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
                qual[pos] = 4;
            }
            reads.push(dnaseq::Read::new(id, seq, qual));
            id += 1;
        }
    }
    reads
}

fn read_pool() -> impl Strategy<Value = Vec<dnaseq::Read>> {
    let base = prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 20..35);
    prop::collection::vec((base, 4usize..30, any::<u16>()), 2..5).prop_map(|specs| {
        let mut reads = Vec::new();
        let mut id = 1u64;
        for (template, copies, mutseed) in specs {
            for c in 0..copies {
                let mut seq = template.clone();
                let mut qual = vec![32u8; seq.len()];
                if c == 0 && !seq.is_empty() {
                    let pos = (mutseed as usize) % seq.len();
                    seq[pos] = match seq[pos] {
                        b'A' => b'C',
                        b'C' => b'G',
                        b'G' => b'T',
                        _ => b'A',
                    };
                    qual[pos] = 4;
                }
                reads.push(dnaseq::Read::new(id, seq, qual));
                id += 1;
            }
        }
        reads
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance matrix: budget ∈ {floor, mid, ∞} × np ∈ {1,3,4} ×
    /// both engines must reproduce the unbudgeted build exactly —
    /// corrected reads *and* the per-rank table footprint (the
    /// byte-accurate geometry fingerprint; a merge that dropped, dup'd,
    /// or mis-folded a single key would shift `table_bytes` or the
    /// corrected output).
    #[test]
    fn budgeted_build_bit_identical(reads in read_pool(), np in prop::sample::select(vec![1usize, 3, 4])) {
        let p = params();
        let baseline = run_distributed(&cfg_with_budget(np, None), &reads);
        let base_tables: Vec<u64> =
            baseline.report.ranks.iter().map(|r| r.build.table_bytes).collect();
        let vbaseline = run_virtual(&cfg_with_budget(np, None), &reads);
        for budget in budgets(&p) {
            let out = run_distributed(&cfg_with_budget(np, Some(budget)), &reads);
            prop_assert_eq!(&out.corrected, &baseline.corrected, "threaded, budget {}", budget);
            let tables: Vec<u64> = out.report.ranks.iter().map(|r| r.build.table_bytes).collect();
            prop_assert_eq!(&tables, &base_tables, "table geometry, budget {}", budget);
            prop_assert!(out.report.ooc_peak_bytes() <= budget, "peak over budget {}", budget);

            let vout = run_virtual(&cfg_with_budget(np, Some(budget)), &reads);
            prop_assert_eq!(&vout.corrected, &vbaseline.corrected, "virtual, budget {}", budget);
        }
    }
}

/// Deterministic heavy run at the floor budget: the build must actually
/// spill (otherwise the merge path went untested), stay under budget,
/// and still match the in-memory output bit for bit.
#[test]
fn floor_budget_spills_and_matches() {
    let p = params();
    let reads = heavy_pool();
    let budget = ooc::min_budget(&p);
    for np in [1usize, 3] {
        let baseline = run_distributed(&cfg_with_budget(np, None), &reads);
        let out = run_distributed(&cfg_with_budget(np, Some(budget)), &reads);
        assert!(out.report.spill_runs() > 0, "np {np}: floor budget never spilled");
        assert!(out.report.spill_bytes() > 0);
        assert!(out.report.ooc_peak_bytes() <= budget, "np {np}: peak over budget");
        assert_eq!(out.corrected, baseline.corrected, "np {np}");
        let base_tables: Vec<u64> =
            baseline.report.ranks.iter().map(|r| r.build.table_bytes).collect();
        let tables: Vec<u64> = out.report.ranks.iter().map(|r| r.build.table_bytes).collect();
        assert_eq!(tables, base_tables, "np {np}: table geometry diverged");
    }
}

/// An unlimited budget must never write a run file — the ooc plumbing's
/// zero-IO fast path is the in-memory finalize verbatim.
#[test]
fn unlimited_budget_never_spills() {
    let out = run_distributed(&cfg_with_budget(3, Some(u64::MAX)), &heavy_pool());
    assert_eq!(out.report.spill_runs(), 0);
    assert_eq!(out.report.spill_bytes(), 0);
}

/// The PR-4 `chop=` fault composed with the spill plane: truncating a
/// rank's run file surfaces as a typed spill error — the run's
/// verify-before-serve contract means a damaged file can fail the
/// build but can never leak wrong counts into a table.
#[test]
fn chopped_run_file_is_a_typed_error() {
    let p = params();
    let budget = ooc::min_budget(&p);
    for keep in [0u64, 10, 40] {
        let cfg = EngineConfig::builder(2, p)
            .chunk_size(16)
            .heuristics(batched())
            .memory_budget(budget)
            .fault(FaultPlan {
                snapshot_chop: Some(SnapshotChopSpec { rank: 0, keep_bytes: keep }),
                ..FaultPlan::none()
            })
            .build()
            .expect("valid config");
        match try_run_distributed(&cfg, &heavy_pool()) {
            Err(EngineError::Spill(e)) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
            Err(other) => panic!("keep={keep}: wrong error kind: {other}"),
            Ok(_) => panic!("keep={keep}: chopped run file was accepted"),
        }
    }
}

/// A budget below the geometry floor is a config error, not a doomed
/// run; and a budget without batch_reads is rejected up front.
#[test]
fn budget_validation() {
    let p = params();
    let floor = ooc::min_budget(&p);
    let err = EngineConfig::builder(2, p)
        .heuristics(batched())
        .memory_budget(floor - 1)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("floor"), "got: {err}");

    let err = EngineConfig::builder(2, params()).memory_budget(floor).build().unwrap_err();
    assert!(err.to_string().contains("batch_reads"), "got: {err}");
}
