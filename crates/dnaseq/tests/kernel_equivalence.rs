//! Equivalence suite for the SWAR/SIMD classification kernels.
//!
//! Every kernel in [`Kernel::available`] (scalar, SWAR, and on x86_64
//! SSE2/AVX2) must be byte-for-byte interchangeable: same classification
//! on arbitrary bytes (not just `ACGTacgt`), same fused k-mer/tile
//! emission stream, including reads shorter than `k` and lengths that
//! straddle the 8/16/32-byte word boundaries the batched kernels step by.

use dnaseq::simd::{Kernel, INVALID_BASE};
use dnaseq::{Base, FusedItem, FusedScratch, TileCodec};
use proptest::prelude::*;

/// Mostly-DNA bytes with deliberate junk mixed in: lowercase, `N`, and
/// bytes that share low bits with valid bases (`E` folds like `A` under
/// the `(b >> 1) & 3` trick and must still classify as invalid).
fn noisy_seq(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![
            b'A', b'C', b'G', b'T', b'a', b'c', b'g', b't', b'N', b'n', b'E', b'U', b'@', 0u8, 0xFF,
        ]),
        len,
    )
}

fn classify_reference(seq: &[u8]) -> Vec<u8> {
    seq.iter().map(|&b| Base::from_ascii(b).map_or(INVALID_BASE, |base| base.code())).collect()
}

fn fused_reference(codec: &TileCodec, seq: &[u8]) -> Vec<FusedItem> {
    codec.fused_scan(seq).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All kernels classify arbitrary bytes identically to the scalar
    /// reference, at every length around the SIMD step widths.
    #[test]
    fn kernels_classify_noisy_bytes_identically(seq in noisy_seq(0..140)) {
        let want = classify_reference(&seq);
        for kernel in Kernel::available() {
            let mut out = vec![0xAAu8; seq.len()];
            kernel.classify(&seq, &mut out);
            prop_assert_eq!(&out, &want, "kernel {} diverges", kernel.name());
        }
    }

    /// Unaligned starts: classifying a tail slice must match the same
    /// bytes classified from offset zero (the wide kernels may not
    /// assume word alignment of the input pointer).
    #[test]
    fn kernels_ignore_input_alignment(seq in noisy_seq(33..160), off in 0usize..33) {
        let tail = &seq[off..];
        let want = classify_reference(tail);
        for kernel in Kernel::available() {
            let mut out = vec![0u8; tail.len()];
            kernel.classify(tail, &mut out);
            prop_assert_eq!(&out, &want, "kernel {} alignment-sensitive", kernel.name());
        }
    }

    /// A longer output buffer is allowed; bytes past `seq.len()` must
    /// survive untouched for every kernel (the wide stores may not spill
    /// past the input length).
    #[test]
    fn kernels_never_write_past_input_len(seq in noisy_seq(0..100), pad in 1usize..40) {
        for kernel in Kernel::available() {
            let mut out = vec![0x5Au8; seq.len() + pad];
            kernel.classify(&seq, &mut out);
            prop_assert_eq!(&out[..seq.len()], &classify_reference(&seq)[..]);
            prop_assert!(
                out[seq.len()..].iter().all(|&b| b == 0x5A),
                "kernel {} wrote past seq.len()",
                kernel.name()
            );
        }
    }

    /// The fused k-mer+tile scan emits the identical stream under every
    /// kernel, against the iterator reference — with invalid bases
    /// breaking runs and `k` swept across the 8/16/32-byte boundaries.
    #[test]
    fn fused_scan_stream_identical_across_kernels(
        seq in noisy_seq(0..150),
        k in 1usize..=32,
        ov in 1usize..=31,
    ) {
        prop_assume!(ov < k);
        let codec = TileCodec::new(k, ov);
        let want = fused_reference(&codec, &seq);
        let mut scratch = FusedScratch::default();
        for kernel in Kernel::available() {
            let mut got = Vec::new();
            codec.fused_scan_into_with(kernel, &seq, &mut scratch, |item| got.push(item));
            prop_assert_eq!(&got, &want, "kernel {} fused stream diverges", kernel.name());
        }
    }

    /// Reads shorter than `k` (including empty) emit nothing, under
    /// every kernel, without panicking on sub-word inputs.
    #[test]
    fn fused_scan_short_reads_emit_nothing(k in 2usize..=32, len in 0usize..32) {
        prop_assume!(len < k);
        let seq = vec![b'A'; len];
        let codec = TileCodec::new(k, 1);
        let mut scratch = FusedScratch::default();
        for kernel in Kernel::available() {
            let mut count = 0usize;
            codec.fused_scan_into_with(kernel, &seq, &mut scratch, |_| count += 1);
            prop_assert_eq!(count, 0, "kernel {} emitted from a read shorter than k", kernel.name());
        }
    }
}

/// Exact word-boundary lengths, deterministically: 7..=9, 15..=17,
/// 31..=33, 63..=65 bytes of alternating valid/invalid content.
#[test]
fn word_boundary_lengths_classify_identically() {
    for &len in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
        let seq: Vec<u8> = (0..len).map(|i| [b'A', b'C', b'N', b'G', b'T', b'x'][i % 6]).collect();
        let want = classify_reference(&seq);
        for kernel in Kernel::available() {
            let mut out = vec![0u8; len];
            kernel.classify(&seq, &mut out);
            assert_eq!(out, want, "kernel {} at len {}", kernel.name(), len);
        }
    }
}
