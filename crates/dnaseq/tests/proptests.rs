//! Property-based tests for the sequence primitives.

use dnaseq::neighbors::{hamming, neighbor_count, neighbors_at_positions};
use dnaseq::{KmerCodec, QualityEncoding, TileCodec};
use proptest::prelude::*;

fn dna_string(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

fn dna_with_n(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), len)
}

proptest! {
    #[test]
    fn kmer_encode_decode_roundtrip(k in 1usize..=32, seed in any::<u64>()) {
        let codec = KmerCodec::new(k);
        // derive a sequence from the seed deterministically
        let mut x = seed;
        let seq: Vec<u8> = (0..k).map(|_| {
            x = dnaseq::mix64(x);
            [b'A', b'C', b'G', b'T'][(x % 4) as usize]
        }).collect();
        let code = codec.encode(&seq).unwrap();
        prop_assert_eq!(codec.decode(code), seq);
        prop_assert_eq!(code & !codec.mask(), 0, "no stray high bits");
    }

    #[test]
    fn kmer_revcomp_is_involution(k in 1usize..=32, code in any::<u64>()) {
        let codec = KmerCodec::new(k);
        let code = code & codec.mask();
        prop_assert_eq!(codec.reverse_complement(codec.reverse_complement(code)), code);
    }

    #[test]
    fn canonical_is_strand_invariant(k in 1usize..=32, code in any::<u64>()) {
        let codec = KmerCodec::new(k);
        let code = code & codec.mask();
        let rc = codec.reverse_complement(code);
        prop_assert_eq!(codec.canonical(code), codec.canonical(rc));
        prop_assert!(codec.canonical(code) <= code);
    }

    #[test]
    fn rolling_kmers_match_naive(seq in dna_with_n(0..120), k in 1usize..=12) {
        let codec = KmerCodec::new(k);
        let rolled: Vec<_> = codec.kmers_of(&seq).collect();
        let naive: Vec<_> = (0..seq.len().saturating_sub(k - 1))
            .filter_map(|i| codec.encode(&seq[i..i + k]).map(|c| (i, c)))
            .collect();
        prop_assert_eq!(rolled, naive);
    }

    #[test]
    fn tile_from_kmers_consistent(seq in dna_string(20..64), k in 4usize..=10, ov in 1usize..=3) {
        prop_assume!(ov < k);
        let tcodec = TileCodec::new(k, ov);
        prop_assume!(seq.len() >= tcodec.len());
        let kcodec = KmerCodec::new(k);
        let s = &seq[..tcodec.len()];
        let first = kcodec.encode(&s[..k]).unwrap();
        let second = kcodec.encode(&s[tcodec.stride()..tcodec.stride() + k]).unwrap();
        prop_assert_eq!(tcodec.from_kmers(first, second), tcodec.encode(s).unwrap());
        let (f, snd) = tcodec.to_kmers(tcodec.encode(s).unwrap());
        prop_assert_eq!((f, snd), (first, second));
    }

    #[test]
    fn tile_revcomp_involution(k in 2usize..=32, ov in 1usize..=31, code in any::<u128>()) {
        prop_assume!(ov < k && 2 * k - ov <= 64);
        let codec = TileCodec::new(k, ov);
        let code = code & ((1u128 << (2 * codec.len())).wrapping_sub(1));
        prop_assert_eq!(codec.reverse_complement(codec.reverse_complement(code)), code);
    }

    #[test]
    fn neighbor_set_properties(
        code in any::<u64>(),
        k in 6usize..=16,
        maxe in 1usize..=2,
        posmask in any::<u16>(),
    ) {
        let codec = KmerCodec::new(k);
        let code = code & codec.mask();
        let positions: Vec<usize> = (0..k).filter(|&p| p < 16 && posmask & (1 << p) != 0).collect();
        prop_assume!(positions.len() <= 6);
        let neigh = neighbors_at_positions(code, k, &positions, maxe);
        prop_assert_eq!(neigh.len(), neighbor_count(positions.len(), maxe));
        let mut seen = std::collections::HashSet::new();
        for (n, d) in &neigh {
            prop_assert!(seen.insert(*n), "duplicate neighbour");
            prop_assert_eq!(hamming(code, *n, k), *d);
            prop_assert!(*d >= 1 && *d <= maxe);
        }
    }

    #[test]
    fn quality_roundtrip_decimal(quals in prop::collection::vec(0u8..=93, 0..200)) {
        let enc = QualityEncoding::DecimalText.encode(&quals);
        prop_assert_eq!(QualityEncoding::DecimalText.decode(&enc), Some(quals));
    }

    #[test]
    fn quality_roundtrip_sanger(quals in prop::collection::vec(0u8..=93, 0..200)) {
        let enc = QualityEncoding::SangerAscii.encode(&quals);
        prop_assert_eq!(QualityEncoding::SangerAscii.decode(&enc), Some(quals));
    }

    #[test]
    fn owner_partition_is_total(np in 1usize..512, key in any::<u64>()) {
        prop_assert!(dnaseq::owner_of(key, np) < np);
    }
}
