//! Phred quality scores.
//!
//! Reptile consumes a separate quality-score file ("information on the
//! quality score associated with every base of the sequence", paper §III
//! step I) because it predates wide FASTQ support ("Reptile is not capable
//! of reading the fastq format"). Quality scores steer the corrector:
//! bases whose Phred score falls below a threshold are the candidate error
//! positions.

/// A Phred quality score: `Q = −10·log10(P_error)`. Illumina-era scores
/// fall in `0..=41`; we accept `0..=93` (the printable Sanger range).
pub type Phred = u8;

/// Highest Phred score representable in Sanger ASCII encoding.
pub const MAX_PHRED: Phred = 93;

/// How qualities are serialized in files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QualityEncoding {
    /// Whitespace-separated decimal integers, one per base (classic
    /// `.qual` files, what Reptile's config points at).
    DecimalText,
    /// One ASCII character per base, `chr(Q + 33)` (Sanger / FASTQ).
    SangerAscii,
    /// One ASCII character per base, `chr(Q + 64)` (Illumina 1.3–1.7
    /// FASTQ — the vintage of the paper's datasets). Scores cap at 62.
    Illumina13,
}

impl QualityEncoding {
    /// Encode a quality string into bytes for a file record.
    pub fn encode(self, quals: &[Phred]) -> Vec<u8> {
        match self {
            QualityEncoding::DecimalText => {
                let mut out = Vec::with_capacity(quals.len() * 3);
                for (i, &q) in quals.iter().enumerate() {
                    if i > 0 {
                        out.push(b' ');
                    }
                    out.extend_from_slice(q.to_string().as_bytes());
                }
                out
            }
            QualityEncoding::SangerAscii => quals.iter().map(|&q| q.min(MAX_PHRED) + 33).collect(),
            QualityEncoding::Illumina13 => quals.iter().map(|&q| q.min(62) + 64).collect(),
        }
    }

    /// Decode a file record into quality scores. Returns `None` on any
    /// malformed token / out-of-range character.
    pub fn decode(self, bytes: &[u8]) -> Option<Vec<Phred>> {
        let mut out = Vec::with_capacity(bytes.len());
        self.decode_into(bytes, &mut out).then_some(out)
    }

    /// Decode into a caller-owned buffer (cleared first), so a streaming
    /// reader can reuse one allocation across records. Returns `false`
    /// (leaving partial content in `out`) on any malformed token /
    /// out-of-range character.
    pub fn decode_into(self, bytes: &[u8], out: &mut Vec<Phred>) -> bool {
        out.clear();
        match self {
            QualityEncoding::DecimalText => {
                let Ok(text) = std::str::from_utf8(bytes) else {
                    return false;
                };
                for tok in text.split_ascii_whitespace() {
                    match tok.parse::<u16>() {
                        Ok(v) if v <= MAX_PHRED as u16 => out.push(v as Phred),
                        _ => return false,
                    }
                }
                true
            }
            QualityEncoding::SangerAscii => bytes.iter().all(|&c| {
                let ok = (33..=33 + MAX_PHRED).contains(&c);
                if ok {
                    out.push(c - 33);
                }
                ok
            }),
            QualityEncoding::Illumina13 => bytes.iter().all(|&c| {
                let ok = (64..=126).contains(&c);
                if ok {
                    out.push(c - 64);
                }
                ok
            }),
        }
    }
}

/// Error probability for a Phred score: `10^(−Q/10)`.
#[inline]
pub fn error_probability(q: Phred) -> f64 {
    10f64.powf(-(q as f64) / 10.0)
}

/// Phred score for an error probability, clamped to `0..=MAX_PHRED`.
#[inline]
pub fn phred_from_probability(p: f64) -> Phred {
    if p <= 0.0 {
        return MAX_PHRED;
    }
    let q = -10.0 * p.log10();
    q.clamp(0.0, MAX_PHRED as f64).round() as Phred
}

/// Positions (within `quals[range]`, reported relative to `range.start`)
/// whose quality is strictly below `threshold` — Reptile's candidate error
/// positions for the window.
pub fn low_quality_positions(
    quals: &[Phred],
    range: std::ops::Range<usize>,
    threshold: Phred,
) -> Vec<usize> {
    quals[range.clone()]
        .iter()
        .enumerate()
        .filter(|(_, &q)| q < threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_round_trip() {
        let quals = vec![0, 2, 17, 40, 41, 93];
        let enc = QualityEncoding::DecimalText.encode(&quals);
        assert_eq!(enc, b"0 2 17 40 41 93".to_vec());
        assert_eq!(QualityEncoding::DecimalText.decode(&enc), Some(quals));
    }

    #[test]
    fn sanger_round_trip() {
        let quals = vec![0, 2, 17, 40, 41, 93];
        let enc = QualityEncoding::SangerAscii.encode(&quals);
        assert_eq!(enc, vec![b'!', b'#', b'2', b'I', b'J', b'~']);
        assert_eq!(QualityEncoding::SangerAscii.decode(&enc), Some(quals));
    }

    #[test]
    fn illumina13_round_trip() {
        let quals = vec![0, 2, 17, 40, 62];
        let enc = QualityEncoding::Illumina13.encode(&quals);
        assert_eq!(enc, vec![64, 66, 81, 104, 126]);
        assert_eq!(QualityEncoding::Illumina13.decode(&enc), Some(quals));
        // scores above the offset-64 ceiling are clamped on encode
        assert_eq!(QualityEncoding::Illumina13.encode(&[93]), vec![126]);
        // characters below the offset are rejected on decode
        assert_eq!(QualityEncoding::Illumina13.decode(&[33]), None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(QualityEncoding::DecimalText.decode(b"12 x 9"), None);
        assert_eq!(QualityEncoding::DecimalText.decode(b"300"), None);
        assert_eq!(QualityEncoding::SangerAscii.decode(&[10u8]), None);
        assert_eq!(QualityEncoding::SangerAscii.decode(&[200u8]), None);
    }

    #[test]
    fn decode_empty_is_empty() {
        assert_eq!(QualityEncoding::DecimalText.decode(b""), Some(vec![]));
        assert_eq!(QualityEncoding::DecimalText.decode(b"   "), Some(vec![]));
        assert_eq!(QualityEncoding::SangerAscii.decode(b""), Some(vec![]));
    }

    #[test]
    fn probability_conversions() {
        assert!((error_probability(10) - 0.1).abs() < 1e-12);
        assert!((error_probability(30) - 0.001).abs() < 1e-12);
        assert_eq!(phred_from_probability(0.1), 10);
        assert_eq!(phred_from_probability(0.001), 30);
        assert_eq!(phred_from_probability(0.0), MAX_PHRED);
        assert_eq!(phred_from_probability(1.0), 0);
    }

    #[test]
    fn low_quality_positions_within_range() {
        let quals = vec![40, 10, 40, 5, 40, 12, 40];
        // window [1, 6): qualities 10, 40, 5, 40, 12 — below-20 at offsets 0, 2, 4
        assert_eq!(low_quality_positions(&quals, 1..6, 20), vec![0, 2, 4]);
        assert_eq!(low_quality_positions(&quals, 0..7, 5), vec![]);
        assert_eq!(low_quality_positions(&quals, 2..2, 50), vec![]);
    }
}
