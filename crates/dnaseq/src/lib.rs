//! DNA sequence primitives shared by every crate in the workspace.
//!
//! This crate provides the low-level machinery Reptile is built on:
//!
//! * [`base`] — the 2-bit nucleotide alphabet (`A=0, C=1, G=2, T=3`) with
//!   complement and ASCII conversions;
//! * [`kmer`] — packed k-mer codes (`u64`, k ≤ 32) with rolling extraction
//!   over reads, reverse complement and canonicalization;
//! * [`tile`] — packed tile codes (`u128`, up to 64 bases). A *tile* is the
//!   concatenation of two k-mers with a fixed overlap, the unit Reptile
//!   corrects (IPDPSW'16 §II-A);
//! * [`neighbors`] — Hamming-distance neighbour enumeration restricted to a
//!   set of candidate (low-quality) positions, the heart of the candidate
//!   search during correction;
//! * [`quality`] — Phred quality scores and their file encodings;
//! * [`read`] — sequencing reads (sequence + per-base quality + numeric id);
//! * [`hashing`] — the deterministic 64-bit mixer used both for hash tables
//!   and for owner-rank assignment (`hash(x) % np`, paper §III step II).

// `deny`, not `forbid`: the [`simd`] module opts back in locally for the
// SSE2/AVX2 intrinsics and cache-prefetch hints, with documented safety
// invariants. Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod bloom;
pub mod fused;
pub mod hashing;
pub mod kmer;
pub mod neighbors;
pub mod quality;
pub mod read;
pub mod simd;
pub mod tile;

pub use base::Base;
pub use bloom::BloomFilter;
pub use fused::{FusedItem, FusedScan, FusedScratch};
pub use hashing::{mix128, mix128_parts, mix64, owner_of, FxBuildHasher, FxHashMap, FxHashSet};
pub use kmer::{KmerCode, KmerCodec};
pub use neighbors::{neighbors_at_positions, NucCode};
pub use quality::{Phred, QualityEncoding};
pub use read::Read;
pub use tile::{TileCode, TileCodec};
