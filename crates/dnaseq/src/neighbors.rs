//! Hamming-distance neighbour enumeration, position-restricted.
//!
//! "Spectrum-based methods often correct k-mers in a read with their
//! Hamming distance neighbors" (paper §II-A). Reptile restricts candidate
//! substitution positions to *low-quality* bases, which is what keeps the
//! candidate set tractable; this module enumerates exactly those
//! neighbours: all codes obtained by substituting at most `max_errors`
//! bases, each drawn from a caller-supplied position list.
//!
//! The enumeration is generic over the packed representation (`u64`
//! k-mers, `u128` tiles) through the [`NucCode`] trait.

/// A packed nucleotide string: positional 2-bit base access plus length.
///
/// Positions are counted from the *first* base (index 0), matching
/// [`crate::KmerCodec::base_at`] / [`crate::TileCodec::base_at`].
pub trait NucCode: Copy + Eq + Ord + std::hash::Hash {
    /// 2-bit base code at `pos`, given total length `len`.
    fn get_base(self, len: usize, pos: usize) -> u8;
    /// Replace base at `pos`, given total length `len`.
    fn set_base(self, len: usize, pos: usize, base: u8) -> Self;
}

impl NucCode for u64 {
    #[inline]
    fn get_base(self, len: usize, pos: usize) -> u8 {
        debug_assert!(pos < len && len <= 32);
        ((self >> (2 * (len - 1 - pos))) & 3) as u8
    }

    #[inline]
    fn set_base(self, len: usize, pos: usize, base: u8) -> u64 {
        debug_assert!(pos < len && base < 4);
        let shift = 2 * (len - 1 - pos);
        (self & !(3u64 << shift)) | ((base as u64) << shift)
    }
}

impl NucCode for u128 {
    #[inline]
    fn get_base(self, len: usize, pos: usize) -> u8 {
        debug_assert!(pos < len && len <= 64);
        ((self >> (2 * (len - 1 - pos))) & 3) as u8
    }

    #[inline]
    fn set_base(self, len: usize, pos: usize, base: u8) -> u128 {
        debug_assert!(pos < len && base < 4);
        let shift = 2 * (len - 1 - pos);
        (self & !(3u128 << shift)) | ((base as u128) << shift)
    }
}

/// Enumerate every code within Hamming distance `1..=max_errors` of
/// `code`, where substitutions may only occur at `positions`.
///
/// The original code itself (distance 0) is *not* emitted. Each emitted
/// neighbour is distinct: positions are combined in strictly increasing
/// order and every substitution changes the base, so no duplicates arise.
/// The visitor receives `(neighbour_code, n_substitutions)`.
///
/// Cost: `sum_{d=1..max_errors} C(|positions|, d) * 3^d` visits — callers
/// keep `|positions|` small by quality filtering (paper §II-A).
pub fn visit_neighbors<C: NucCode>(
    code: C,
    len: usize,
    positions: &[usize],
    max_errors: usize,
    visit: &mut impl FnMut(C, usize),
) {
    fn recurse<C: NucCode>(
        code: C,
        len: usize,
        positions: &[usize],
        from: usize,
        errors_left: usize,
        depth: usize,
        visit: &mut impl FnMut(C, usize),
    ) {
        if errors_left == 0 {
            return;
        }
        for (i, &pos) in positions.iter().enumerate().skip(from) {
            let original = code.get_base(len, pos);
            for base in 0..4u8 {
                if base == original {
                    continue;
                }
                let neighbor = code.set_base(len, pos, base);
                visit(neighbor, depth + 1);
                recurse(neighbor, len, positions, i + 1, errors_left - 1, depth + 1, visit);
            }
        }
    }
    recurse(code, len, positions, 0, max_errors, 0, visit);
}

/// Collect the neighbours from [`visit_neighbors`] into a vector of
/// `(code, distance)` pairs.
///
/// ```
/// use dnaseq::{neighbors_at_positions, KmerCodec};
/// let codec = KmerCodec::new(4);
/// let code = codec.encode(b"ACGT").unwrap();
/// // substitutions only at position 1: three neighbours
/// let n = neighbors_at_positions(code, 4, &[1], 1);
/// assert_eq!(n.len(), 3);
/// ```
pub fn neighbors_at_positions<C: NucCode>(
    code: C,
    len: usize,
    positions: &[usize],
    max_errors: usize,
) -> Vec<(C, usize)> {
    // C(p,1)*3 + C(p,2)*9 is the exact size for max_errors=2; reserve for
    // the common cases without computing binomials in general.
    let mut out = Vec::with_capacity(positions.len() * 3 + 1);
    visit_neighbors(code, len, positions, max_errors, &mut |c, d| out.push((c, d)));
    out
}

/// Number of neighbours [`visit_neighbors`] will produce:
/// `sum_{d=1..max_errors} C(p, d) * 3^d` for `p = positions`.
pub fn neighbor_count(positions: usize, max_errors: usize) -> usize {
    let mut total = 0usize;
    for d in 1..=max_errors.min(positions) {
        let mut comb = 1usize;
        for i in 0..d {
            comb = comb * (positions - i) / (i + 1);
        }
        total += comb * 3usize.pow(d as u32);
    }
    total
}

/// Hamming distance between two packed codes of length `len`.
pub fn hamming<C: NucCode>(a: C, b: C, len: usize) -> usize {
    (0..len).filter(|&p| a.get_base(len, p) != b.get_base(len, p)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::KmerCodec;

    #[test]
    fn single_position_yields_three_neighbors() {
        let codec = KmerCodec::new(4);
        let code = codec.encode(b"ACGT").unwrap();
        let n = neighbors_at_positions(code, 4, &[1], 1);
        assert_eq!(n.len(), 3);
        let decoded: Vec<_> = n.iter().map(|(c, _)| codec.decode(*c)).collect();
        assert!(decoded.contains(&b"AAGT".to_vec()));
        assert!(decoded.contains(&b"AGGT".to_vec()));
        assert!(decoded.contains(&b"ATGT".to_vec()));
    }

    #[test]
    fn counts_match_formula() {
        let codec = KmerCodec::new(8);
        let code = codec.encode(b"ACGTACGT").unwrap();
        for (positions, max_e) in [(vec![0, 3, 5], 1), (vec![0, 3, 5], 2), (vec![1, 2, 4, 7], 2)] {
            let n = neighbors_at_positions(code, 8, &positions, max_e);
            assert_eq!(n.len(), neighbor_count(positions.len(), max_e));
            // all distinct
            let set: std::collections::HashSet<_> = n.iter().map(|(c, _)| *c).collect();
            assert_eq!(set.len(), n.len());
        }
    }

    #[test]
    fn distances_are_correct() {
        let codec = KmerCodec::new(6);
        let code = codec.encode(b"AAAAAA").unwrap();
        for (neigh, d) in neighbors_at_positions(code, 6, &[0, 2, 4], 2) {
            assert_eq!(hamming(code, neigh, 6), d);
            assert!((1..=2).contains(&d));
        }
    }

    #[test]
    fn substitutions_respect_position_restriction() {
        let codec = KmerCodec::new(6);
        let code = codec.encode(b"ACGTAC").unwrap();
        let allowed = [1usize, 4];
        for (neigh, _) in neighbors_at_positions(code, 6, &allowed, 2) {
            for pos in 0..6 {
                if !allowed.contains(&pos) {
                    assert_eq!(
                        code.get_base(6, pos),
                        neigh.get_base(6, pos),
                        "mutated forbidden position {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_positions_or_zero_errors_yield_nothing() {
        let code = 0u64;
        assert!(neighbors_at_positions(code, 4, &[], 2).is_empty());
        assert!(neighbors_at_positions(code, 4, &[0, 1], 0).is_empty());
        assert_eq!(neighbor_count(0, 2), 0);
        assert_eq!(neighbor_count(5, 0), 0);
    }

    #[test]
    fn u128_codes_work() {
        use crate::tile::TileCodec;
        let codec = TileCodec::new(8, 4); // len 12
        let code = codec.encode(b"ACGTACGTACGT").unwrap();
        let n = neighbors_at_positions(code, 12, &[0, 11], 1);
        assert_eq!(n.len(), 6);
        for (neigh, d) in n {
            assert_eq!(hamming(code, neigh, 12), d);
        }
    }

    #[test]
    fn neighbor_count_known_values() {
        assert_eq!(neighbor_count(1, 1), 3);
        assert_eq!(neighbor_count(2, 1), 6);
        assert_eq!(neighbor_count(2, 2), 6 + 9);
        assert_eq!(neighbor_count(3, 2), 9 + 27);
        // max_errors capped by positions
        assert_eq!(neighbor_count(1, 5), 3);
    }
}
