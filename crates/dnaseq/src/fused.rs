//! Fused k-mer + tile extraction in one rolling scan.
//!
//! Spectrum construction (paper Steps II–III) needs both streams of a
//! read: every k-mer window and every tile window. Running
//! [`KmerCodec::kmers_of`] and [`TileCodec::tiles_of`] separately pays
//! twice for the base decoding, and `tiles_of` re-encodes each tile
//! window from scratch — `O(tile_len)` per tile. But a tile *is* two
//! k-mers at distance [`TileCodec::stride`], so the rolling k-mer scan
//! already holds everything a tile needs: when the k-mer at position `p`
//! appears, the tile starting at `s = p − stride` is
//! [`TileCodec::from_kmers`] of the k-mer remembered at `s` and the one
//! at `p` — an `O(1)` shift/or instead of a fresh window encode.
//!
//! A tile window at `s` is valid exactly when both of its k-mers are:
//! the two k-mer windows jointly cover the tile's bases (`stride ≤ k`),
//! so neither can contain an ambiguous base if both encoded. The scan
//! therefore emits precisely the tiles `tiles_of` emits — the
//! stride-aligned starts plus the end-anchored final window — in the
//! same order, which is what lets the distributed builder swap the two
//! separate scans for this one without changing any output.

use crate::kmer::{KmerCode, KmerCodec, KmerIter};
use crate::tile::{TileCode, TileCodec};

/// One step of the fused scan: a valid k-mer window plus, when that
/// window closes one, the tile ending at the same base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusedItem {
    /// Start position of the k-mer window.
    pub kmer_pos: usize,
    /// The k-mer code at `kmer_pos`.
    pub kmer: KmerCode,
    /// The tile whose second k-mer is this window, if this position
    /// closes a tile window (stride-aligned start or the end-anchored
    /// final window, matching [`TileCodec::tiles_of`]).
    pub tile: Option<(usize, TileCode)>,
}

/// Iterator returned by [`TileCodec::fused_scan`].
pub struct FusedScan<'a> {
    tiles: TileCodec,
    kmers: KmerIter<'a>,
    stride: usize,
    /// Start of the last k-mer window (`seq.len() − k`); `usize::MAX`
    /// for reads too short to hold a k-mer. The tile ending at this
    /// window is the end-anchored final window of `tiles_of`.
    last_kmer_start: usize,
    /// Ring of the most recent valid k-mers, indexed by
    /// `pos % ring.len()` — ambiguous bases leave gaps in the position
    /// sequence, so each slot carries its position to validate a hit.
    ring: Vec<(usize, KmerCode)>,
}

impl TileCodec {
    /// Scan `seq` once, yielding every valid k-mer window together with
    /// the tile (if any) that window completes. The k-mer stream equals
    /// [`KmerCodec::kmers_of`] for `k()`-mers; the tile stream equals
    /// [`TileCodec::tiles_of`] (same starts, codes, and order).
    pub fn fused_scan<'a>(&self, seq: &'a [u8]) -> FusedScan<'a> {
        let kcodec = KmerCodec::new(self.k());
        let stride = self.stride();
        let last_kmer_start = if seq.len() >= self.k() { seq.len() - self.k() } else { usize::MAX };
        FusedScan {
            tiles: *self,
            kmers: kcodec.kmers_of(seq),
            stride,
            last_kmer_start,
            ring: vec![(usize::MAX, 0); stride + 1],
        }
    }
}

impl Iterator for FusedScan<'_> {
    type Item = FusedItem;

    fn next(&mut self) -> Option<FusedItem> {
        let (pos, code) = self.kmers.next()?;
        let cap = self.ring.len();
        let tile = if pos >= self.stride {
            let s = pos - self.stride;
            let (ring_pos, first) = self.ring[s % cap];
            // Emit iff the first k-mer of the would-be tile was valid and
            // the start is one `tiles_of` visits: stride-aligned, or the
            // end-anchored window closing at the read's final k-mer.
            if ring_pos == s && (s.is_multiple_of(self.stride) || pos == self.last_kmer_start) {
                Some((s, self.tiles.from_kmers(first, code)))
            } else {
                None
            }
        } else {
            None
        };
        self.ring[pos % cap] = (pos, code);
        Some(FusedItem { kmer_pos: pos, kmer: code, tile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seq: &[u8], k: usize, overlap: usize) {
        let tcodec = TileCodec::new(k, overlap);
        let kcodec = KmerCodec::new(k);
        let items: Vec<FusedItem> = tcodec.fused_scan(seq).collect();
        let kmers: Vec<(usize, KmerCode)> = items.iter().map(|i| (i.kmer_pos, i.kmer)).collect();
        let tiles: Vec<(usize, TileCode)> = items.iter().filter_map(|i| i.tile).collect();
        assert_eq!(
            kmers,
            kcodec.kmers_of(seq).collect::<Vec<_>>(),
            "kmer stream diverged: k={k} o={overlap} seq={:?}",
            String::from_utf8_lossy(seq)
        );
        assert_eq!(
            tiles,
            tcodec.tiles_of(seq).collect::<Vec<_>>(),
            "tile stream diverged: k={k} o={overlap} seq={:?}",
            String::from_utf8_lossy(seq)
        );
    }

    #[test]
    fn matches_separate_scans_on_clean_reads() {
        check(b"ACGTACGTACGT", 4, 2);
        check(b"ACGTACGTACGTT", 4, 2); // anchored final window
        check(b"GATTACAGATTACA", 6, 3);
        check(b"ACGTACGTA", 5, 2); // stride 3, anchored at 1
    }

    #[test]
    fn matches_separate_scans_with_ambiguous_bases() {
        check(b"ACGNACGTACGT", 4, 2);
        check(b"NNNNNN", 4, 2);
        check(b"ACGTNNACGTACGTN", 4, 2);
        check(b"ACGTACNGTACGTACGNT", 5, 3);
        check(b"ANCNGNTN", 3, 1);
    }

    #[test]
    fn matches_on_short_and_empty_reads() {
        check(b"", 4, 2);
        check(b"ACG", 4, 2); // shorter than k
        check(b"ACGT", 4, 2); // exactly k: kmer but no tile
        check(b"ACGTA", 4, 2); // k < len < tile_len
        check(b"ACGTAC", 4, 2); // exactly tile_len
    }

    #[test]
    fn matches_across_parameter_grid_on_random_reads() {
        // Deterministic pseudo-random reads with ~6% ambiguous bases.
        for (k, overlap) in [(3, 1), (4, 2), (5, 2), (6, 5), (8, 4), (13, 7), (32, 1)] {
            for len in [0, 1, 7, 19, 40, 63, 64, 65, 150] {
                let seed = crate::mix64((k * 1000 + overlap * 100 + len) as u64);
                let seq: Vec<u8> = (0..len)
                    .map(|j| {
                        let r = crate::mix64(seed ^ j as u64);
                        if r.is_multiple_of(16) {
                            b'N'
                        } else {
                            [b'A', b'C', b'G', b'T'][(r % 4) as usize]
                        }
                    })
                    .collect();
                check(&seq, k, overlap);
            }
        }
    }

    #[test]
    fn anchored_window_not_emitted_twice_when_stride_aligned() {
        // len 12, tile_len 6, stride 2: last start 6 is stride-aligned, so
        // exactly four tiles — the fused scan must not duplicate start 6.
        let tcodec = TileCodec::new(4, 2);
        let starts: Vec<usize> =
            tcodec.fused_scan(b"ACGTACGTACGT").filter_map(|i| i.tile.map(|t| t.0)).collect();
        assert_eq!(starts, vec![0, 2, 4, 6]);
    }
}
