//! Fused k-mer + tile extraction in one rolling scan.
//!
//! Spectrum construction (paper Steps II–III) needs both streams of a
//! read: every k-mer window and every tile window. Running
//! [`KmerCodec::kmers_of`] and [`TileCodec::tiles_of`] separately pays
//! twice for the base decoding, and `tiles_of` re-encodes each tile
//! window from scratch — `O(tile_len)` per tile. But a tile *is* two
//! k-mers at distance [`TileCodec::stride`], so the rolling k-mer scan
//! already holds everything a tile needs: when the k-mer at position `p`
//! appears, the tile starting at `s = p − stride` is
//! [`TileCodec::from_kmers`] of the k-mer remembered at `s` and the one
//! at `p` — an `O(1)` shift/or instead of a fresh window encode.
//!
//! A tile window at `s` is valid exactly when both of its k-mers are:
//! the two k-mer windows jointly cover the tile's bases (`stride ≤ k`),
//! so neither can contain an ambiguous base if both encoded. The scan
//! therefore emits precisely the tiles `tiles_of` emits — the
//! stride-aligned starts plus the end-anchored final window — in the
//! same order, which is what lets the distributed builder swap the two
//! separate scans for this one without changing any output.

use crate::kmer::{KmerCode, KmerCodec, KmerIter};
use crate::simd::{Kernel, INVALID_BASE};
use crate::tile::{TileCode, TileCodec};

/// Reusable buffers for [`TileCodec::fused_scan_into`], so a worker
/// thread scanning many reads allocates once.
#[derive(Default)]
pub struct FusedScratch {
    codes: Vec<u8>,
}

/// One step of the fused scan: a valid k-mer window plus, when that
/// window closes one, the tile ending at the same base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusedItem {
    /// Start position of the k-mer window.
    pub kmer_pos: usize,
    /// The k-mer code at `kmer_pos`.
    pub kmer: KmerCode,
    /// The tile whose second k-mer is this window, if this position
    /// closes a tile window (stride-aligned start or the end-anchored
    /// final window, matching [`TileCodec::tiles_of`]).
    pub tile: Option<(usize, TileCode)>,
}

/// Iterator returned by [`TileCodec::fused_scan`].
pub struct FusedScan<'a> {
    tiles: TileCodec,
    kmers: KmerIter<'a>,
    stride: usize,
    /// Start of the last k-mer window (`seq.len() − k`); `usize::MAX`
    /// for reads too short to hold a k-mer. The tile ending at this
    /// window is the end-anchored final window of `tiles_of`.
    last_kmer_start: usize,
    /// Ring of the most recent valid k-mers, indexed by
    /// `pos % ring.len()` — ambiguous bases leave gaps in the position
    /// sequence, so each slot carries its position to validate a hit.
    ring: Vec<(usize, KmerCode)>,
}

impl TileCodec {
    /// Scan `seq` once, yielding every valid k-mer window together with
    /// the tile (if any) that window completes. The k-mer stream equals
    /// [`KmerCodec::kmers_of`] for `k()`-mers; the tile stream equals
    /// [`TileCodec::tiles_of`] (same starts, codes, and order).
    pub fn fused_scan<'a>(&self, seq: &'a [u8]) -> FusedScan<'a> {
        let kcodec = KmerCodec::new(self.k());
        let stride = self.stride();
        let last_kmer_start = if seq.len() >= self.k() { seq.len() - self.k() } else { usize::MAX };
        FusedScan {
            tiles: *self,
            kmers: kcodec.kmers_of(seq),
            stride,
            last_kmer_start,
            ring: vec![(usize::MAX, 0); stride + 1],
        }
    }
}

impl TileCodec {
    /// Fast-path fused scan: same emission stream as
    /// [`fused_scan`](TileCodec::fused_scan), delivered through a
    /// callback, with the per-byte work batched.
    ///
    /// The scan classifies the whole read in one SWAR/SIMD pass
    /// ([`Kernel::best`]), then walks *maximal runs* of valid bases.
    /// Within a run every window is valid, so the per-position validity
    /// branch and the position-validated ring of the iterator disappear:
    /// a tile's first k-mer is valid exactly when it lies in the same
    /// run (`stride < k` makes the two k-mer windows overlap, so they
    /// share a run whenever both exist), reducing the ring to a plain
    /// circular buffer of codes.
    pub fn fused_scan_into(
        &self,
        seq: &[u8],
        scratch: &mut FusedScratch,
        emit: impl FnMut(FusedItem),
    ) {
        self.fused_scan_into_with(Kernel::best(), seq, scratch, emit)
    }

    /// [`fused_scan_into`](TileCodec::fused_scan_into) with an explicit
    /// classification kernel — for equivalence tests and benches.
    pub fn fused_scan_into_with(
        &self,
        kernel: Kernel,
        seq: &[u8],
        scratch: &mut FusedScratch,
        mut emit: impl FnMut(FusedItem),
    ) {
        let k = self.k();
        let stride = self.stride();
        let cap = stride + 1; // ≤ 32: overlap ≥ 1 bounds stride by 31
        let kmask = KmerCodec::new(k).mask();
        let last_kmer_start = if seq.len() >= k { seq.len() - k } else { usize::MAX };

        scratch.codes.clear();
        scratch.codes.resize(seq.len(), INVALID_BASE);
        kernel.classify(seq, &mut scratch.codes);
        let codes = &scratch.codes[..];

        // Circular buffer of the last `cap` k-mer codes of the current
        // run; validity needs no check inside a run.
        let mut ring = [0u64; 32];
        let mut i = 0usize;
        while i < seq.len() {
            if codes[i] == INVALID_BASE {
                i += 1;
                continue;
            }
            let start = i;
            while i < seq.len() && codes[i] != INVALID_BASE {
                i += 1;
            }
            let run = &codes[start..i];
            if run.len() < k {
                continue;
            }
            // Prime the rolling code with the run's first k−1 bases.
            let mut code = 0u64;
            for &c in &run[..k - 1] {
                code = (code << 2) | c as u64;
            }
            // Ring cursors for the t-th emission of this run: write slot
            // w = t % cap; read slot r = (t − stride) % cap = (t+1) % cap.
            let mut w = 0usize;
            let mut r = 1 % cap;
            // `tiles_of` starts are *absolute* stride multiples; track
            // s % stride incrementally (one division per run). The first
            // tile candidate (emission t = stride) starts at s = start.
            let mut s_mod = start % stride;
            for (t, &c) in run[k - 1..].iter().enumerate() {
                code = ((code << 2) | c as u64) & kmask;
                let p = start + t;
                let tile = if t >= stride {
                    let hit = if s_mod == 0 || p == last_kmer_start {
                        Some((p - stride, self.from_kmers(ring[r], code)))
                    } else {
                        None
                    };
                    s_mod += 1;
                    if s_mod == stride {
                        s_mod = 0;
                    }
                    hit
                } else {
                    None
                };
                ring[w] = code;
                w += 1;
                if w == cap {
                    w = 0;
                }
                r += 1;
                if r == cap {
                    r = 0;
                }
                emit(FusedItem { kmer_pos: p, kmer: code, tile });
            }
        }
    }
}

impl Iterator for FusedScan<'_> {
    type Item = FusedItem;

    fn next(&mut self) -> Option<FusedItem> {
        let (pos, code) = self.kmers.next()?;
        let cap = self.ring.len();
        let tile = if pos >= self.stride {
            let s = pos - self.stride;
            let (ring_pos, first) = self.ring[s % cap];
            // Emit iff the first k-mer of the would-be tile was valid and
            // the start is one `tiles_of` visits: stride-aligned, or the
            // end-anchored window closing at the read's final k-mer.
            if ring_pos == s && (s.is_multiple_of(self.stride) || pos == self.last_kmer_start) {
                Some((s, self.tiles.from_kmers(first, code)))
            } else {
                None
            }
        } else {
            None
        };
        self.ring[pos % cap] = (pos, code);
        Some(FusedItem { kmer_pos: pos, kmer: code, tile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seq: &[u8], k: usize, overlap: usize) {
        let tcodec = TileCodec::new(k, overlap);
        let kcodec = KmerCodec::new(k);
        let items: Vec<FusedItem> = tcodec.fused_scan(seq).collect();
        let kmers: Vec<(usize, KmerCode)> = items.iter().map(|i| (i.kmer_pos, i.kmer)).collect();
        let tiles: Vec<(usize, TileCode)> = items.iter().filter_map(|i| i.tile).collect();
        assert_eq!(
            kmers,
            kcodec.kmers_of(seq).collect::<Vec<_>>(),
            "kmer stream diverged: k={k} o={overlap} seq={:?}",
            String::from_utf8_lossy(seq)
        );
        assert_eq!(
            tiles,
            tcodec.tiles_of(seq).collect::<Vec<_>>(),
            "tile stream diverged: k={k} o={overlap} seq={:?}",
            String::from_utf8_lossy(seq)
        );
        // The batched fast path must emit the identical stream, under
        // every classification kernel this machine has.
        let mut scratch = FusedScratch::default();
        for kernel in Kernel::available() {
            let mut fast = Vec::new();
            tcodec.fused_scan_into_with(kernel, seq, &mut scratch, |item| fast.push(item));
            assert_eq!(
                fast,
                items,
                "fast path diverged: kernel={} k={k} o={overlap} seq={:?}",
                kernel.name(),
                String::from_utf8_lossy(seq)
            );
        }
    }

    #[test]
    fn matches_separate_scans_on_clean_reads() {
        check(b"ACGTACGTACGT", 4, 2);
        check(b"ACGTACGTACGTT", 4, 2); // anchored final window
        check(b"GATTACAGATTACA", 6, 3);
        check(b"ACGTACGTA", 5, 2); // stride 3, anchored at 1
    }

    #[test]
    fn matches_separate_scans_with_ambiguous_bases() {
        check(b"ACGNACGTACGT", 4, 2);
        check(b"NNNNNN", 4, 2);
        check(b"ACGTNNACGTACGTN", 4, 2);
        check(b"ACGTACNGTACGTACGNT", 5, 3);
        check(b"ANCNGNTN", 3, 1);
    }

    #[test]
    fn matches_on_short_and_empty_reads() {
        check(b"", 4, 2);
        check(b"ACG", 4, 2); // shorter than k
        check(b"ACGT", 4, 2); // exactly k: kmer but no tile
        check(b"ACGTA", 4, 2); // k < len < tile_len
        check(b"ACGTAC", 4, 2); // exactly tile_len
    }

    #[test]
    fn matches_across_parameter_grid_on_random_reads() {
        // Deterministic pseudo-random reads with ~6% ambiguous bases.
        for (k, overlap) in [(3, 1), (4, 2), (5, 2), (6, 5), (8, 4), (13, 7), (32, 1)] {
            for len in [0, 1, 7, 19, 40, 63, 64, 65, 150] {
                let seed = crate::mix64((k * 1000 + overlap * 100 + len) as u64);
                let seq: Vec<u8> = (0..len)
                    .map(|j| {
                        let r = crate::mix64(seed ^ j as u64);
                        if r.is_multiple_of(16) {
                            b'N'
                        } else {
                            [b'A', b'C', b'G', b'T'][(r % 4) as usize]
                        }
                    })
                    .collect();
                check(&seq, k, overlap);
            }
        }
    }

    #[test]
    fn anchored_window_not_emitted_twice_when_stride_aligned() {
        // len 12, tile_len 6, stride 2: last start 6 is stride-aligned, so
        // exactly four tiles — the fused scan must not duplicate start 6.
        let tcodec = TileCodec::new(4, 2);
        let starts: Vec<usize> =
            tcodec.fused_scan(b"ACGTACGTACGT").filter_map(|i| i.tile.map(|t| t.0)).collect();
        assert_eq!(starts, vec![0, 2, 4, 6]);
    }
}
