//! Deterministic hashing: hash tables and owner-rank assignment.
//!
//! The paper stores both spectra in hash tables ("instead of arrays; this
//! prevents any need for sorting ... or repeated binary searches", §II-B)
//! and assigns every k-mer, tile and read an *owning rank*
//! `hashFunction(x) % np` (§III, steps II and load balancing). Two things
//! matter for the reproduction:
//!
//! 1. the hash must be *deterministic across ranks and runs* — every rank
//!    must agree on who owns a k-mer, and tests must be reproducible, so
//!    the std `RandomState` (SipHash with a random seed) is unsuitable;
//! 2. it must be cheap for 64/128-bit integer keys, which dominate the hot
//!    loops.
//!
//! We therefore implement the Fx multiply-fold hash (the scheme used by
//! rustc, reimplemented here from its published description) plus a
//! `splitmix64`-style finalizer for owner assignment, where we want the
//! *low bits* taken by `% np` to be thoroughly mixed. The paper notes that
//! with the C++ standard library hash the per-rank k-mer counts vary by
//! <1%; `mix64` achieves the same uniformity (see Fig 3 reproduction).

use std::hash::{BuildHasherDefault, Hasher};

/// `splitmix64` finalizer: a full-avalanche 64-bit mixer.
///
/// Every bit of the input affects every bit of the output, so
/// `mix64(x) % np` partitions keys near-uniformly even for consecutive or
/// low-entropy k-mer codes.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mix a 128-bit value (tile code) down to 64 bits before owner assignment.
#[inline]
pub fn mix128(x: u128) -> u64 {
    mix128_parts(x as u64, (x >> 64) as u64)
}

/// [`mix128`] on a key already split into low/high 64-bit halves, so
/// split-storage tables (flat tile spectra) can hash a slot without
/// reassembling the `u128`. `mix128_parts(x as u64, (x >> 64) as u64)`
/// is identical to `mix128(x)` by construction.
#[inline]
pub fn mix128_parts(lo: u64, hi: u64) -> u64 {
    mix64(lo ^ mix64(hi))
}

/// The owning rank of a 64-bit key: `mix64(key) % np` (paper §III step II:
/// "the owning rank ... is defined as the rank p for which
/// hashFunction(kmer) % np == p").
#[inline]
pub fn owner_of(key: u64, np: usize) -> usize {
    debug_assert!(np > 0);
    (mix64(key) % np as u64) as usize
}

/// The owning rank of a 128-bit key (tiles).
#[inline]
pub fn owner_of_u128(key: u128, np: usize) -> usize {
    debug_assert!(np > 0);
    (mix128(key) % np as u64) as usize
}

/// Hash a byte string (read sequences, for the load-balancing shuffle).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-fold hasher: `state = (rotl5(state) ^ word) * SEED`.
///
/// Low-quality but extremely fast for integer keys; exactly what the hot
/// spectrum lookups need. Not HashDoS-resistant — all inputs here are
/// machine-generated k-mer codes, not attacker-controlled.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.fold(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic (no per-map random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_small_range() {
        // Full avalanche implies no collisions on any small set we try.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)));
        }
    }

    #[test]
    fn owner_in_range_and_deterministic() {
        for np in [1usize, 2, 3, 7, 64, 1024] {
            for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
                let o = owner_of(key, np);
                assert!(o < np);
                assert_eq!(o, owner_of(key, np), "determinism");
            }
        }
    }

    #[test]
    fn owner_distribution_is_uniform() {
        // Consecutive k-mer codes (worst case for a weak hash) must spread
        // within a few percent of uniform — this is the property behind the
        // paper's Fig 3 (<1% k-mer count spread across 128 ranks).
        let np = 128usize;
        let n = 1_000_000u64;
        let mut counts = vec![0u64; np];
        for key in 0..n {
            counts[owner_of(key, np)] += 1;
        }
        let expect = n as f64 / np as f64;
        for (rank, &c) in counts.iter().enumerate() {
            // binomial std-dev is ~1.1% of the mean here; allow 5 sigma
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.06, "rank {rank} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn mix128_parts_matches_mix128() {
        for x in [0u128, 1, u128::MAX, 0xDEAD_BEEF_CAFE << 70 | 0x1234_5678] {
            assert_eq!(mix128_parts(x as u64, (x >> 64) as u64), mix128(x));
        }
    }

    #[test]
    fn u128_owner_uses_both_halves() {
        let np = 64;
        let a = owner_of_u128(1u128, np);
        let b = owner_of_u128(1u128 << 64, np);
        // Not a strict requirement for any *particular* pair, but the high
        // half must influence the result overall; check over many keys.
        let mut diff = (a != b) as usize;
        for i in 0..1000u128 {
            if owner_of_u128(i, np) != owner_of_u128(i << 64, np) {
                diff += 1;
            }
        }
        assert!(diff > 800, "high 64 bits barely affect owner: {diff}");
    }

    #[test]
    fn fx_hasher_differs_on_word_order() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn hash_bytes_deterministic_and_length_sensitive() {
        assert_eq!(hash_bytes(b"ACGT"), hash_bytes(b"ACGT"));
        assert_ne!(hash_bytes(b"ACGT"), hash_bytes(b"ACGTA"));
        assert_ne!(hash_bytes(b"ACGT"), hash_bytes(b"TGCA"));
    }
}
