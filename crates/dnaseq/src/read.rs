//! Sequencing reads.
//!
//! A read pairs a nucleotide sequence with per-base Phred qualities and
//! carries the numeric id Reptile's input preprocessing assigns ("the
//! names have been pre-processed to be sequence numbers (in ascending
//! order beginning with number 1)", paper §III step I).

use crate::base;
use crate::hashing;
use crate::quality::Phred;

/// A short read: ascending numeric id, ASCII sequence (`ACGTN`), and one
/// Phred score per base.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Read {
    /// 1-based sequence number from the input file.
    pub id: u64,
    /// Upper-case ASCII nucleotides; `N` marks ambiguous calls.
    pub seq: Vec<u8>,
    /// Per-base Phred scores, same length as `seq`.
    pub qual: Vec<Phred>,
}

impl Read {
    /// Construct a read, normalizing the sequence to upper case and
    /// replacing non-`ACGT` characters with `N`.
    pub fn new(id: u64, seq: impl Into<Vec<u8>>, qual: Vec<Phred>) -> Read {
        let mut seq = seq.into();
        for ch in seq.iter_mut() {
            *ch = match base::Base::from_ascii(*ch) {
                Some(b) => b.to_ascii(),
                None => b'N',
            };
        }
        let read = Read { id, seq, qual };
        read.debug_validate();
        read
    }

    /// Construct without normalization; used by parsers that already
    /// validated their input.
    pub fn from_parts(id: u64, seq: Vec<u8>, qual: Vec<Phred>) -> Read {
        let read = Read { id, seq, qual };
        read.debug_validate();
        read
    }

    fn debug_validate(&self) {
        debug_assert_eq!(
            self.seq.len(),
            self.qual.len(),
            "read {}: sequence/quality length mismatch",
            self.id
        );
    }

    /// Read length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for zero-length reads.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Whether every base is unambiguous (`ACGT`).
    pub fn is_unambiguous(&self) -> bool {
        self.seq.iter().all(|&c| base::is_unambiguous(c))
    }

    /// The deterministic 64-bit hash of the sequence content, used for the
    /// static load-balancing shuffle ("a sequence is designated to be
    /// owned by a rank p if hashFunction(seq) % np == p", paper §III-A).
    #[inline]
    pub fn sequence_hash(&self) -> u64 {
        hashing::hash_bytes(&self.seq)
    }

    /// The rank owning this read under the load-balancing policy.
    #[inline]
    pub fn owner(&self, np: usize) -> usize {
        (self.sequence_hash() % np as u64) as usize
    }

    /// Count positions where this read and `other` differ. Panics if
    /// lengths differ — substitution-only correction preserves length.
    pub fn hamming_distance(&self, other: &Read) -> usize {
        assert_eq!(self.len(), other.len(), "length-changing edit detected");
        self.seq.iter().zip(&other.seq).filter(|(a, b)| a != b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_sequence() {
        let r = Read::new(1, b"acgtx".to_vec(), vec![30; 5]);
        assert_eq!(r.seq, b"ACGTN");
        assert!(!r.is_unambiguous());
        let r2 = Read::new(2, b"ACGT".to_vec(), vec![30; 4]);
        assert!(r2.is_unambiguous());
    }

    #[test]
    fn owner_is_stable_and_in_range() {
        let r = Read::new(7, b"ACGTACGTACGT".to_vec(), vec![30; 12]);
        for np in [1usize, 2, 16, 128] {
            let o = r.owner(np);
            assert!(o < np);
            assert_eq!(o, r.owner(np));
        }
        // owner depends on sequence, not id
        let r2 = Read::new(9999, b"ACGTACGTACGT".to_vec(), vec![2; 12]);
        assert_eq!(r.owner(64), r2.owner(64));
    }

    #[test]
    fn hamming_distance_counts_substitutions() {
        let a = Read::new(1, b"ACGT".to_vec(), vec![30; 4]);
        let b = Read::new(1, b"AGGA".to_vec(), vec![30; 4]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "length-changing")]
    fn hamming_distance_rejects_length_change() {
        let a = Read::new(1, b"ACGT".to_vec(), vec![30; 4]);
        let b = Read::new(1, b"ACG".to_vec(), vec![30; 3]);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn empty_read() {
        let r = Read::new(1, Vec::new(), Vec::new());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.is_unambiguous(), "vacuously true");
    }
}
