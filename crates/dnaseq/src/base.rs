//! The 2-bit nucleotide alphabet.
//!
//! Reptile packs sequences into integer codes two bits per base, with the
//! conventional encoding `A=0, C=1, G=2, T=3`. Any other input character
//! (most commonly `N`) has no 2-bit code; windows containing such characters
//! are skipped during spectrum construction and never corrected.

/// A single nucleotide with its canonical 2-bit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine, code 0.
    A = 0,
    /// Cytosine, code 1.
    C = 1,
    /// Guanine, code 2.
    G = 2,
    /// Thymine, code 3.
    T = 3,
}

impl Base {
    /// All four bases in code order. Handy for substitution enumeration.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decode a 2-bit code (`0..=3`). Panics in debug builds on out-of-range
    /// input; release builds mask to the low two bits.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        debug_assert!(code < 4, "2-bit base code out of range: {code}");
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse an ASCII nucleotide character (case-insensitive). Returns
    /// `None` for ambiguity codes (`N`, IUPAC letters) and anything else.
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement (`A<->T`, `C<->G`). With the 2-bit encoding
    /// this is simply `3 - code`, i.e. bitwise NOT of the low two bits.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(3 - self.code())
    }
}

/// Complement a 2-bit base code without constructing a [`Base`].
#[inline]
pub fn complement_code(code: u8) -> u8 {
    3 - (code & 3)
}

/// True if the ASCII character encodes one of `ACGT` (case-insensitive).
#[inline]
pub fn is_unambiguous(ch: u8) -> bool {
    Base::from_ascii(ch).is_some()
}

/// Encode an ASCII sequence into 2-bit codes, or `None` at the first
/// ambiguous character.
pub fn encode_ascii(seq: &[u8]) -> Option<Vec<u8>> {
    seq.iter().map(|&c| Base::from_ascii(c).map(Base::code)).collect()
}

/// Reverse-complement an ASCII sequence in place. Ambiguous characters map
/// to `N` (so `N` stays `N`), matching common toolchain behaviour.
pub fn reverse_complement_ascii(seq: &mut [u8]) {
    seq.reverse();
    for ch in seq.iter_mut() {
        *ch = match Base::from_ascii(*ch) {
            Some(b) => b.complement().to_ascii(),
            None => b'N',
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn complement_code_matches_base_complement() {
        for b in Base::ALL {
            assert_eq!(complement_code(b.code()), b.complement().code());
        }
    }

    #[test]
    fn ambiguous_characters_rejected() {
        for ch in [b'N', b'n', b'R', b'-', b'.', b'X', b'0'] {
            assert_eq!(Base::from_ascii(ch), None, "{}", ch as char);
            assert!(!is_unambiguous(ch));
        }
    }

    #[test]
    fn encode_ascii_full_and_failing() {
        assert_eq!(encode_ascii(b"ACGT"), Some(vec![0, 1, 2, 3]));
        assert_eq!(encode_ascii(b"ACNT"), None);
        assert_eq!(encode_ascii(b""), Some(vec![]));
    }

    #[test]
    fn revcomp_ascii() {
        let mut s = b"ACGTN".to_vec();
        reverse_complement_ascii(&mut s);
        assert_eq!(s, b"NACGT");
        // involution on unambiguous input
        let mut t = b"GATTACA".to_vec();
        reverse_complement_ascii(&mut t);
        reverse_complement_ascii(&mut t);
        assert_eq!(t, b"GATTACA");
    }
}
