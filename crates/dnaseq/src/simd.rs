//! SWAR / SIMD base classification kernels.
//!
//! The fused extraction scan (paper Steps II–III hot path) spends most of
//! its per-base budget deciding "is this byte one of `ACGTacgt`, and which
//! 2-bit code is it". This module batches that decision 8–32 bytes at a
//! time: a portable u64 SWAR baseline plus `target_feature`-gated SSE2 and
//! AVX2 paths selected by runtime dispatch (the multi-path kernel idiom of
//! ECC-Benchmark). Every kernel writes the same output: one byte per input
//! byte, holding the 2-bit base code (`A=0, C=1, G=2, T=3`, case folded)
//! or [`INVALID_BASE`] for anything else.
//!
//! The trick that makes a branch-free kernel possible is that for the
//! eight valid ASCII letters the code is a pure bit function of the byte:
//! with `t = (byte >> 1) & 3`, the code is `t ^ ((t >> 1) & 1)`
//! (`A`→0, `C`→1, `G`→2, `T`→3; lowercase differs only in bit 5, which
//! the shift+mask never sees). Validity is a separate byte-equality test
//! against `{A,C,G,T}` after folding bit 5, and the two are blended with
//! a byte mask.

// The SSE2/AVX2 paths and the cache prefetch below need `core::arch`
// intrinsics, which are `unsafe fn`. The crate otherwise denies unsafe
// code; this module scopes the exceptions and documents each invariant.
#![allow(unsafe_code)]

use crate::base::Base;

/// Output byte for anything that is not `ACGTacgt`.
pub const INVALID_BASE: u8 = 0xFF;

const LSB: u64 = 0x0101_0101_0101_0101;

/// A base-classification kernel. All kernels are output-equivalent; they
/// differ only in how many bytes they chew per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// One byte at a time through [`Base::from_ascii`] — the reference.
    Scalar,
    /// Portable SWAR on `u64` words, 8 bytes per step.
    Swar,
    /// SSE2, 16 bytes per step (baseline on `x86_64`).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// AVX2, 32 bytes per step (runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Kernel {
    /// Every kernel usable on this machine, slowest first.
    pub fn available() -> Vec<Kernel> {
        let mut v = vec![Kernel::Scalar, Kernel::Swar];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(Kernel::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Kernel::Avx2);
            }
        }
        v
    }

    /// The fastest kernel available on this machine (cached after the
    /// first call).
    pub fn best() -> Kernel {
        use std::sync::OnceLock;
        static BEST: OnceLock<Kernel> = OnceLock::new();
        *BEST.get_or_init(|| *Kernel::available().last().expect("non-empty"))
    }

    /// Kernel name for bench/report labels.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => "sse2",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => "avx2",
        }
    }

    /// Classify `seq` into `out` (2-bit code or [`INVALID_BASE`] per
    /// byte). `out` must be at least as long as `seq`; only the first
    /// `seq.len()` bytes are written.
    pub fn classify(self, seq: &[u8], out: &mut [u8]) {
        assert!(out.len() >= seq.len(), "output buffer shorter than input");
        let out = &mut out[..seq.len()];
        match self {
            Kernel::Scalar => classify_scalar(seq, out),
            Kernel::Swar => classify_swar(seq, out),
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => classify_sse2(seq, out),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => classify_avx2(seq, out),
        }
    }
}

/// Classify with the best kernel available ([`Kernel::best`]).
#[inline]
pub fn classify(seq: &[u8], out: &mut [u8]) {
    Kernel::best().classify(seq, out)
}

fn classify_scalar(seq: &[u8], out: &mut [u8]) {
    for (o, &ch) in out.iter_mut().zip(seq) {
        *o = match Base::from_ascii(ch) {
            Some(b) => b.code(),
            None => INVALID_BASE,
        };
    }
}

/// 0x80 in every byte of the result where the corresponding byte of `x`
/// equals `needle`, 0x00 elsewhere.
///
/// Uses the carry-free zero-byte locate `!(((v & 0x7F…) + 0x7F…) | v |
/// 0x7F…)` rather than the better-known `(v − 0x01…) & !v & 0x80…`:
/// the subtractive form borrows across byte lanes, so a byte equal to
/// `needle + 1` directly above a matching byte is falsely flagged
/// (e.g. `"TU"` would classify the `U` as a valid `T`). The additive
/// form caps each lane at `0x7F + 0x7F` and cannot carry.
#[inline]
fn swar_eq(x: u64, needle: u8) -> u64 {
    const L7: u64 = LSB * 0x7F;
    let v = x ^ (LSB * needle as u64);
    !(((v & L7) + L7) | v | L7)
}

#[inline]
fn swar_word(w: u64) -> u64 {
    // Fold lowercase onto uppercase (bit 5), then test all four letters.
    let up = w & (LSB * 0xDF);
    let valid = swar_eq(up, b'A') | swar_eq(up, b'C') | swar_eq(up, b'G') | swar_eq(up, b'T');
    // 0xFF per valid byte: the per-byte 0/1 lanes never carry when
    // multiplied by 0xFF.
    let mask = (valid >> 7).wrapping_mul(0xFF);
    // Per-byte code t ^ ((t >> 1) & 1); the &-masks discard the bits that
    // bleed across byte lanes in the word-wide shifts.
    let t = (w >> 1) & (LSB * 3);
    let codes = t ^ ((t >> 1) & LSB);
    (codes & mask) | !mask
}

fn classify_swar(seq: &[u8], out: &mut [u8]) {
    let mut it = seq.chunks_exact(8);
    let mut ot = out.chunks_exact_mut(8);
    for (s, o) in (&mut it).zip(&mut ot) {
        let w = u64::from_le_bytes(s.try_into().expect("chunk of 8"));
        o.copy_from_slice(&swar_word(w).to_le_bytes());
    }
    classify_scalar(it.remainder(), ot.into_remainder());
}

#[cfg(target_arch = "x86_64")]
fn classify_sse2(seq: &[u8], out: &mut [u8]) {
    use core::arch::x86_64::*;
    let n = seq.len() - seq.len() % 16;
    // SAFETY: SSE2 is part of the x86_64 baseline, so the intrinsics are
    // always callable; all loads/stores are unaligned and stay within
    // `seq[..n]` / `out[..n]`.
    unsafe {
        let fold = _mm_set1_epi8(0xDFu8 as i8);
        let la = _mm_set1_epi8(b'A' as i8);
        let lc = _mm_set1_epi8(b'C' as i8);
        let lg = _mm_set1_epi8(b'G' as i8);
        let lt = _mm_set1_epi8(b'T' as i8);
        let three = _mm_set1_epi8(3);
        let one = _mm_set1_epi8(1);
        let inv = _mm_set1_epi8(INVALID_BASE as i8);
        let mut i = 0;
        while i < n {
            let w = _mm_loadu_si128(seq.as_ptr().add(i) as *const __m128i);
            let up = _mm_and_si128(w, fold);
            let valid = _mm_or_si128(
                _mm_or_si128(_mm_cmpeq_epi8(up, la), _mm_cmpeq_epi8(up, lc)),
                _mm_or_si128(_mm_cmpeq_epi8(up, lg), _mm_cmpeq_epi8(up, lt)),
            );
            // 16-bit shifts bleed across byte lanes; the byte masks (3,
            // then 1) discard the contaminated high bits, as in SWAR.
            let t = _mm_and_si128(_mm_srli_epi16(w, 1), three);
            let codes = _mm_xor_si128(t, _mm_and_si128(_mm_srli_epi16(t, 1), one));
            let res = _mm_or_si128(_mm_and_si128(valid, codes), _mm_andnot_si128(valid, inv));
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, res);
            i += 16;
        }
    }
    classify_swar(&seq[n..], &mut out[n..]);
}

#[cfg(target_arch = "x86_64")]
fn classify_avx2(seq: &[u8], out: &mut [u8]) {
    assert!(std::arch::is_x86_feature_detected!("avx2"), "Kernel::Avx2 used without AVX2 support");
    // SAFETY: AVX2 availability was just verified at runtime.
    unsafe { classify_avx2_body(seq, out) }
}

/// # Safety
/// The caller must ensure AVX2 is available on the running CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn classify_avx2_body(seq: &[u8], out: &mut [u8]) {
    use core::arch::x86_64::*;
    let n = seq.len() - seq.len() % 32;
    // SAFETY (for the raw loads/stores): unaligned and within
    // `seq[..n]` / `out[..n]`.
    unsafe {
        let fold = _mm256_set1_epi8(0xDFu8 as i8);
        let la = _mm256_set1_epi8(b'A' as i8);
        let lc = _mm256_set1_epi8(b'C' as i8);
        let lg = _mm256_set1_epi8(b'G' as i8);
        let lt = _mm256_set1_epi8(b'T' as i8);
        let three = _mm256_set1_epi8(3);
        let one = _mm256_set1_epi8(1);
        let inv = _mm256_set1_epi8(INVALID_BASE as i8);
        let mut i = 0;
        while i < n {
            let w = _mm256_loadu_si256(seq.as_ptr().add(i) as *const __m256i);
            let up = _mm256_and_si256(w, fold);
            let valid = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpeq_epi8(up, la), _mm256_cmpeq_epi8(up, lc)),
                _mm256_or_si256(_mm256_cmpeq_epi8(up, lg), _mm256_cmpeq_epi8(up, lt)),
            );
            let t = _mm256_and_si256(_mm256_srli_epi16(w, 1), three);
            let codes = _mm256_xor_si256(t, _mm256_and_si256(_mm256_srli_epi16(t, 1), one));
            let res =
                _mm256_or_si256(_mm256_and_si256(valid, codes), _mm256_andnot_si256(valid, inv));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, res);
            i += 32;
        }
    }
    classify_swar(&seq[n..], &mut out[n..]);
}

/// Hint the CPU to pull `slice[idx]`'s cache line toward L1. No-op off
/// `x86_64` and a pure performance hint everywhere: it never changes
/// observable state.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: the pointer is in bounds (checked above) and prefetch
        // does not read or write memory architecturally.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(idx) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_classify(seq: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; seq.len()];
        classify_scalar(seq, &mut out);
        out
    }

    #[test]
    fn scalar_maps_the_eight_letters_and_rejects_the_rest() {
        let got = ref_classify(b"ACGTacgtNnXz \x00\xFF0");
        assert_eq!(&got[..8], &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(got[8..].iter().all(|&c| c == INVALID_BASE));
    }

    #[test]
    fn all_kernels_agree_on_every_single_byte() {
        for b in 0u8..=255 {
            let seq = [b; 33]; // spans one AVX2 step plus tails
            let want = ref_classify(&seq);
            for kernel in Kernel::available() {
                let mut got = vec![0u8; seq.len()];
                kernel.classify(&seq, &mut got);
                assert_eq!(got, want, "kernel {} byte {b:#x}", kernel.name());
            }
        }
    }

    #[test]
    fn all_kernels_agree_on_mixed_sequences_of_every_length() {
        // Lengths cross the 8/16/32-byte step boundaries; contents mix
        // valid bases (both cases) with ambiguity codes.
        for len in 0..=70 {
            let seq: Vec<u8> = (0..len)
                .map(|j| {
                    let r = crate::mix64(0xD1CE ^ j as u64);
                    match r % 11 {
                        0 => b'N',
                        1 => b'n',
                        2 => (r >> 8) as u8, // arbitrary junk
                        3..=6 => [b'a', b'c', b'g', b't'][(r % 4) as usize],
                        _ => [b'A', b'C', b'G', b'T'][(r % 4) as usize],
                    }
                })
                .collect();
            let want = ref_classify(&seq);
            for kernel in Kernel::available() {
                let mut got = vec![0u8; len];
                kernel.classify(&seq, &mut got);
                assert_eq!(got, want, "kernel {} len {len}", kernel.name());
            }
        }
    }

    #[test]
    fn classify_accepts_oversized_output_buffers() {
        let mut out = [7u8; 10];
        classify(b"ACGT", &mut out);
        assert_eq!(&out[..4], &[0, 1, 2, 3]);
        assert_eq!(&out[4..], &[7; 6]); // untouched
    }

    #[test]
    fn best_is_available_and_stable() {
        let b = Kernel::best();
        assert!(Kernel::available().contains(&b));
        assert_eq!(Kernel::best(), b);
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let v = [1u64, 2, 3];
        prefetch_read(&v, 0);
        prefetch_read(&v, 2);
        prefetch_read(&v, 1000); // out of range: ignored
        prefetch_read::<u64>(&[], 0);
    }
}
