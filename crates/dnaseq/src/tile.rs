//! Packed tile codes.
//!
//! A *tile* is "a sequence of two or more k-mers with a fixed overlap
//! length between the k-mers" (paper §II-A). Reptile corrects tiles rather
//! than individual k-mers because a tile has "almost twice the character
//! count as the k-mer", so error correction at the tile level has far fewer
//! Hamming-neighbour candidates, improving accuracy.
//!
//! We implement the two-k-mer tile: with k-mer length `k` and overlap `o`
//! the tile covers `L = 2k − o` bases, `L ≤ 64`, so the "tile ID is a long
//! integer" (§III step II) — a `u128` here.

use crate::base::Base;
use crate::kmer::{KmerCode, KmerCodec};

/// A packed tile: 2 bits per base in a `u128`, first base highest.
pub type TileCode = u128;

/// Encoder/decoder for tiles made of two `k`-mers overlapping by `overlap`.
///
/// ```
/// use dnaseq::{KmerCodec, TileCodec};
/// let tiles = TileCodec::new(4, 2);          // tile length 6, stride 2
/// let kmers = KmerCodec::new(4);
/// let t = tiles.encode(b"ACGTAC").unwrap();
/// let (first, second) = tiles.to_kmers(t);
/// assert_eq!(kmers.decode(first), b"ACGT");
/// assert_eq!(kmers.decode(second), b"GTAC");
/// assert_eq!(tiles.from_kmers(first, second), t);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileCodec {
    k: usize,
    overlap: usize,
    len: usize,
    mask: u128,
}

impl TileCodec {
    /// Build a tile codec. Requirements: `1 ≤ overlap < k ≤ 32` and the
    /// resulting tile length `2k − overlap ≤ 64`.
    pub fn new(k: usize, overlap: usize) -> TileCodec {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        assert!(overlap >= 1 && overlap < k, "overlap must be in 1..k, got {overlap}");
        let len = 2 * k - overlap;
        assert!(len <= 64, "tile length {len} exceeds 64 bases");
        let mask = if len == 64 { u128::MAX } else { (1u128 << (2 * len)) - 1 };
        TileCodec { k, overlap, len, mask }
    }

    /// K-mer length of the constituent k-mers.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Overlap between the two k-mers in bases.
    #[inline]
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Tile length in bases (`2k − overlap`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True only for degenerate configurations (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The step between consecutive tile start positions: the second k-mer
    /// starts `k − overlap` bases after the first, and so do tiles.
    #[inline]
    pub fn stride(&self) -> usize {
        self.k - self.overlap
    }

    /// Encode exactly `len()` ASCII bases.
    pub fn encode(&self, seq: &[u8]) -> Option<TileCode> {
        if seq.len() != self.len {
            return None;
        }
        let mut code = 0u128;
        for &ch in seq {
            code = (code << 2) | Base::from_ascii(ch)?.code() as u128;
        }
        Some(code)
    }

    /// Decode back to upper-case ASCII.
    pub fn decode(&self, code: TileCode) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (self.len - 1 - i);
            *slot = Base::from_code(((code >> shift) & 3) as u8).to_ascii();
        }
        out
    }

    /// Combine two k-mer codes into a tile. The second k-mer must start
    /// `stride()` bases after the first, i.e. its first `overlap` bases
    /// repeat the first k-mer's last `overlap` bases. Debug builds verify
    /// the overlap agreement.
    pub fn from_kmers(&self, first: KmerCode, second: KmerCode) -> TileCode {
        debug_assert_eq!(
            first & ((1u64 << (2 * self.overlap)) - 1),
            second >> (2 * (self.k - self.overlap)),
            "k-mers disagree on their overlap"
        );
        let tail_bases = self.k - self.overlap;
        let tail_mask = (1u128 << (2 * tail_bases)) - 1;
        ((first as u128) << (2 * tail_bases)) | (second as u128 & tail_mask)
    }

    /// Split a tile into its two constituent k-mer codes.
    pub fn to_kmers(&self, tile: TileCode) -> (KmerCode, KmerCode) {
        let codec = KmerCodec::new(self.k);
        let first = (tile >> (2 * (self.len - self.k))) as u64 & codec.mask();
        let second = tile as u64 & codec.mask();
        (first, second)
    }

    /// 2-bit base code at tile position `pos`.
    #[inline]
    pub fn base_at(&self, code: TileCode, pos: usize) -> u8 {
        debug_assert!(pos < self.len);
        ((code >> (2 * (self.len - 1 - pos))) & 3) as u8
    }

    /// Replace the base at `pos`.
    #[inline]
    pub fn with_base(&self, code: TileCode, pos: usize, base: u8) -> TileCode {
        debug_assert!(pos < self.len && base < 4);
        let shift = 2 * (self.len - 1 - pos);
        (code & !(3u128 << shift)) | ((base as u128) << shift)
    }

    /// Reverse complement of a packed tile.
    pub fn reverse_complement(&self, code: TileCode) -> TileCode {
        let mut rc = 0u128;
        let mut fwd = code;
        for _ in 0..self.len {
            rc = (rc << 2) | (3 - (fwd & 3));
            fwd >>= 2;
        }
        rc & self.mask
    }

    /// Canonical form: min of the tile and its reverse complement.
    #[inline]
    pub fn canonical(&self, code: TileCode) -> TileCode {
        code.min(self.reverse_complement(code))
    }

    /// Iterate the tiles of a read: `(start_position, code)` for every
    /// window of `len()` unambiguous bases, advancing by [`stride`] —
    /// plus, when the stride does not land on it, one final window
    /// anchored at the read end, so the 3' bases are covered by the
    /// spectrum exactly as the corrector visits them.
    ///
    /// Reptile walks reads tile by tile with this stride so consecutive
    /// tiles share exactly one k-mer.
    ///
    /// [`stride`]: TileCodec::stride
    pub fn tiles_of<'a>(&self, seq: &'a [u8]) -> impl Iterator<Item = (usize, TileCode)> + 'a {
        let this = *self;
        let stride = self.stride();
        let last_start = seq.len() as isize - this.len as isize;
        let anchored = if last_start >= 0 && !(last_start as usize).is_multiple_of(stride) {
            Some(last_start as usize)
        } else {
            None
        };
        (0..)
            .map(move |i| i * stride)
            .take_while(move |&s| s as isize <= last_start)
            .chain(anchored)
            .filter_map(move |s| this.encode(&seq[s..s + this.len]).map(|c| (s, c)))
    }

    /// Number of tile windows (valid or not) in a read of length `len`,
    /// honouring the stride and the anchored final window.
    pub fn windows_in(&self, read_len: usize) -> usize {
        if read_len < self.len {
            0
        } else {
            let span = read_len - self.len;
            span / self.stride() + 1 + usize::from(!span.is_multiple_of(self.stride()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_round_trip() {
        let codec = TileCodec::new(6, 3);
        assert_eq!(codec.len(), 9);
        let seq = b"ACGTACGTA";
        let code = codec.encode(seq).unwrap();
        assert_eq!(codec.decode(code), seq.to_vec());
    }

    #[test]
    fn from_kmers_matches_direct_encoding() {
        let k = 6;
        let overlap = 3;
        let tcodec = TileCodec::new(k, overlap);
        let kcodec = KmerCodec::new(k);
        let seq = b"ACGTACGTA";
        let first = kcodec.encode(&seq[0..k]).unwrap();
        let second = kcodec.encode(&seq[tcodec.stride()..tcodec.stride() + k]).unwrap();
        assert_eq!(tcodec.from_kmers(first, second), tcodec.encode(seq).unwrap());
        let (f2, s2) = tcodec.to_kmers(tcodec.encode(seq).unwrap());
        assert_eq!((f2, s2), (first, second));
    }

    #[test]
    fn base_accessors() {
        let codec = TileCodec::new(5, 2);
        let seq = b"AACCGGTT"; // len = 2*5-2 = 8
        let code = codec.encode(seq).unwrap();
        for (i, &ch) in seq.iter().enumerate() {
            assert_eq!(codec.base_at(code, i), Base::from_ascii(ch).unwrap().code());
        }
        let modified = codec.with_base(code, 7, Base::A.code());
        assert_eq!(codec.decode(modified), b"AACCGGTA".to_vec());
    }

    #[test]
    fn revcomp_involution_and_canonical() {
        let codec = TileCodec::new(8, 4);
        let code = codec.encode(b"ACGTTGCAACGT").unwrap();
        assert_eq!(codec.reverse_complement(codec.reverse_complement(code)), code);
        assert_eq!(codec.canonical(code), codec.canonical(codec.reverse_complement(code)));
    }

    #[test]
    fn tiles_iterator_stride_and_skipping() {
        let codec = TileCodec::new(4, 2); // len 6, stride 2
        let seq = b"ACGTACGTACGT";
        let tiles: Vec<_> = codec.tiles_of(seq).collect();
        let expected_starts: Vec<usize> = vec![0, 2, 4, 6];
        assert_eq!(tiles.iter().map(|t| t.0).collect::<Vec<_>>(), expected_starts);
        assert_eq!(codec.windows_in(seq.len()), 4);
        // With an N at position 3, tiles starting at 0 and 2 vanish.
        let seq_n = b"ACGNACGTACGT";
        let starts: Vec<usize> = codec.tiles_of(seq_n).map(|t| t.0).collect();
        assert_eq!(starts, vec![4, 6]);
    }

    #[test]
    fn max_length_tile() {
        let codec = TileCodec::new(32, 1);
        assert_eq!(codec.len(), 63);
        let seq = vec![b'T'; 63];
        let code = codec.encode(&seq).unwrap();
        assert_eq!(codec.decode(code), seq);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=32")]
    fn rejects_oversized_k() {
        let _ = TileCodec::new(33, 1);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_bad_overlap() {
        let _ = TileCodec::new(8, 8);
    }
}
