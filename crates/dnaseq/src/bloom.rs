//! A Bloom filter for k-mer/tile codes.
//!
//! The paper notes that "a memory-efficient alternative to [threshold
//! pruning] is usage of a Bloom filter" (§III step III, citing Georganas
//! et al. SC'14): most distinct k-mers in error-rich data are singletons
//! (each error creates up to `k` novel k-mers), so keeping them out of
//! the counting tables saves the bulk of construction memory. The
//! standard scheme: on first sight a code only sets bits in the filter;
//! it enters the counting table when seen again. See
//! [`reptile::spectrum`]'s `build_with_bloom` for the integration.
//!
//! Implementation: double hashing (`h1 + i·h2` over `m` bits) with the
//! [`crate::mix64`] finalizer — the classic Kirsch–Mitzenmacher
//! construction, no external dependencies.

use crate::hashing::mix64;

/// A fixed-size Bloom filter over `u64` items (hash 128-bit tiles down
/// with [`crate::hashing::mix128`] first).
///
/// ```
/// use dnaseq::BloomFilter;
/// let mut filter = BloomFilter::for_items(1000, 0.01);
/// assert!(!filter.insert(42), "first sighting");
/// assert!(filter.insert(42), "second sighting");
/// assert!(filter.contains(42));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter with at least `bits` bits (rounded up to a power
    /// of two) and `hashes` probe positions per item.
    pub fn with_bits(bits: usize, hashes: u32) -> BloomFilter {
        assert!((1..=16).contains(&hashes), "unreasonable hash count {hashes}");
        let bits = bits.max(64).next_power_of_two();
        BloomFilter { bits: vec![0u64; bits / 64], mask: bits as u64 - 1, hashes, inserted: 0 }
    }

    /// Size the filter for `n` expected items at `fp_rate` false-positive
    /// probability: `m = −n·ln p / (ln 2)²`, `k = (m/n)·ln 2`.
    pub fn for_items(n: usize, fp_rate: f64) -> BloomFilter {
        assert!(fp_rate > 0.0 && fp_rate < 1.0);
        let n = n.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fp_rate.ln() / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter::with_bits(m, k)
    }

    #[inline]
    fn probes(&self, item: u64) -> impl Iterator<Item = u64> + '_ {
        let h1 = mix64(item);
        // ensure h2 is odd so probes cycle through all positions
        let h2 = mix64(item ^ 0xA5A5_A5A5_A5A5_A5A5) | 1;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) & self.mask)
    }

    /// Insert an item; returns `true` if it *may* have been present
    /// already (all probe bits were set).
    pub fn insert(&mut self, item: u64) -> bool {
        let mut present = true;
        // collect positions first to appease the borrow checker cheaply
        let positions: Vec<u64> = self.probes(item).collect();
        for pos in positions {
            let (word, bit) = ((pos / 64) as usize, pos % 64);
            if self.bits[word] & (1 << bit) == 0 {
                present = false;
                self.bits[word] |= 1 << bit;
            }
        }
        self.inserted += 1;
        present
    }

    /// Whether the item may be present (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, item: u64) -> bool {
        self.probes(item).all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.bits.len() * 64
    }

    /// Resident bytes of the bit array.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Items inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of set bits — an occupancy/health diagnostic.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.bit_len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_items(10_000, 0.01);
        for i in 0..10_000u64 {
            f.insert(i * 2654435761);
        }
        for i in 0..10_000u64 {
            assert!(f.contains(i * 2654435761), "false negative at {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let n = 50_000;
        let mut f = BloomFilter::for_items(n, 0.01);
        for i in 0..n as u64 {
            f.insert(mix64(i));
        }
        let fps = (0..100_000u64).filter(|&i| f.contains(mix64(i + 1_000_000_000))).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "fp rate {rate} too high");
    }

    #[test]
    fn insert_reports_prior_presence() {
        let mut f = BloomFilter::for_items(1000, 0.001);
        assert!(!f.insert(42));
        assert!(f.insert(42), "second insert must report presence");
    }

    #[test]
    fn sizing_formula_reasonable() {
        let f = BloomFilter::for_items(1_000_000, 0.01);
        // theory: ~9.6 bits/item → rounded to power of two
        assert!(f.bit_len() >= 9_000_000 && f.bit_len() <= 20_000_000);
        let tiny = BloomFilter::for_items(0, 0.5);
        assert!(tiny.bit_len() >= 64);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = BloomFilter::with_bits(1 << 12, 4);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..200u64 {
            f.insert(i);
        }
        let r = f.fill_ratio();
        assert!(r > 0.05 && r < 0.5, "{r}");
        assert_eq!(f.inserted(), 200);
    }
}
