//! Packed k-mer codes and rolling extraction over reads.
//!
//! A k-mer (k ≤ 32) is packed two bits per base into a `u64`, most
//! significant base first, exactly the "k-mer ID ... constructed from the
//! characters of the sequence" of the paper (§III step II). Extraction over
//! a read is a rolling window that restarts after every ambiguous base.

use crate::base::Base;

/// A packed k-mer: 2 bits per base, first base in the highest-order bits.
pub type KmerCode = u64;

/// Encoder/decoder for k-mers of a fixed length `k`.
///
/// ```
/// use dnaseq::KmerCodec;
/// let codec = KmerCodec::new(5);
/// let code = codec.encode(b"ACGTA").unwrap();
/// assert_eq!(codec.decode(code), b"ACGTA".to_vec());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerCodec {
    k: usize,
    mask: u64,
}

impl KmerCodec {
    /// Create a codec for k-mers of `k` bases. Panics unless `1 <= k <= 32`.
    pub fn new(k: usize) -> KmerCodec {
        assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
        let mask = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
        KmerCodec { k, mask }
    }

    /// The k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bit mask covering the `2k` payload bits.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Encode exactly `k` ASCII bases; `None` if the slice has the wrong
    /// length or contains an ambiguous character.
    pub fn encode(&self, seq: &[u8]) -> Option<KmerCode> {
        if seq.len() != self.k {
            return None;
        }
        let mut code = 0u64;
        for &ch in seq {
            code = (code << 2) | Base::from_ascii(ch)?.code() as u64;
        }
        Some(code)
    }

    /// Decode a code back to upper-case ASCII.
    pub fn decode(&self, code: KmerCode) -> Vec<u8> {
        let mut out = vec![0u8; self.k];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (self.k - 1 - i);
            *slot = Base::from_code(((code >> shift) & 3) as u8).to_ascii();
        }
        out
    }

    /// The 2-bit code of the base at position `pos` (0 = first base).
    #[inline]
    pub fn base_at(&self, code: KmerCode, pos: usize) -> u8 {
        debug_assert!(pos < self.k);
        ((code >> (2 * (self.k - 1 - pos))) & 3) as u8
    }

    /// Replace the base at `pos` with the 2-bit code `base`.
    #[inline]
    pub fn with_base(&self, code: KmerCode, pos: usize, base: u8) -> KmerCode {
        debug_assert!(pos < self.k && base < 4);
        let shift = 2 * (self.k - 1 - pos);
        (code & !(3u64 << shift)) | ((base as u64) << shift)
    }

    /// Reverse complement of a packed k-mer.
    pub fn reverse_complement(&self, code: KmerCode) -> KmerCode {
        let mut rc = 0u64;
        let mut fwd = code;
        for _ in 0..self.k {
            rc = (rc << 2) | (3 - (fwd & 3));
            fwd >>= 2;
        }
        rc & self.mask
    }

    /// Canonical form: the lexicographic minimum of a k-mer and its reverse
    /// complement. Spectrum construction folds strands together this way.
    #[inline]
    pub fn canonical(&self, code: KmerCode) -> KmerCode {
        code.min(self.reverse_complement(code))
    }

    /// Iterate all valid k-mer codes of a read, left to right, with their
    /// start positions. Windows containing ambiguous bases are skipped; the
    /// rolling encoder restarts after the offending base.
    pub fn kmers_of<'a>(&self, seq: &'a [u8]) -> KmerIter<'a> {
        KmerIter { codec: *self, seq, pos: 0, filled: 0, code: 0 }
    }

    /// Number of k-mer windows a read of length `len` has (valid or not).
    #[inline]
    pub fn windows_in(&self, len: usize) -> usize {
        len.saturating_sub(self.k - 1)
    }
}

/// Rolling k-mer iterator returned by [`KmerCodec::kmers_of`].
pub struct KmerIter<'a> {
    codec: KmerCodec,
    seq: &'a [u8],
    /// Index of the next base to consume.
    pos: usize,
    /// How many consecutive valid bases end just before `pos`.
    filled: usize,
    code: u64,
}

impl Iterator for KmerIter<'_> {
    /// `(start_position, code)` pairs.
    type Item = (usize, KmerCode);

    fn next(&mut self) -> Option<(usize, KmerCode)> {
        let k = self.codec.k;
        while self.pos < self.seq.len() {
            match Base::from_ascii(self.seq[self.pos]) {
                Some(b) => {
                    self.code = ((self.code << 2) | b.code() as u64) & self.codec.mask;
                    self.filled += 1;
                    self.pos += 1;
                    if self.filled >= k {
                        return Some((self.pos - k, self.code));
                    }
                }
                None => {
                    self.filled = 0;
                    self.code = 0;
                    self.pos += 1;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let codec = KmerCodec::new(7);
        let seq = b"GATTACA";
        let code = codec.encode(seq).unwrap();
        assert_eq!(codec.decode(code), seq.to_vec());
    }

    #[test]
    fn encode_rejects_bad_input() {
        let codec = KmerCodec::new(4);
        assert_eq!(codec.encode(b"ACG"), None, "too short");
        assert_eq!(codec.encode(b"ACGTA"), None, "too long");
        assert_eq!(codec.encode(b"ACNT"), None, "ambiguous");
    }

    #[test]
    fn base_at_and_with_base() {
        let codec = KmerCodec::new(5);
        let code = codec.encode(b"ACGTA").unwrap();
        assert_eq!(codec.base_at(code, 0), Base::A.code());
        assert_eq!(codec.base_at(code, 2), Base::G.code());
        assert_eq!(codec.base_at(code, 4), Base::A.code());
        let modified = codec.with_base(code, 2, Base::T.code());
        assert_eq!(codec.decode(modified), b"ACTTA".to_vec());
        // original untouched positions preserved
        for pos in [0usize, 1, 3, 4] {
            assert_eq!(codec.base_at(modified, pos), codec.base_at(code, pos));
        }
    }

    #[test]
    fn reverse_complement_known_value() {
        let codec = KmerCodec::new(4);
        let code = codec.encode(b"ACGT").unwrap();
        // ACGT is its own reverse complement.
        assert_eq!(codec.reverse_complement(code), code);
        let code2 = codec.encode(b"AAAA").unwrap();
        assert_eq!(codec.decode(codec.reverse_complement(code2)), b"TTTT".to_vec());
    }

    #[test]
    fn canonical_is_min_of_pair() {
        let codec = KmerCodec::new(6);
        let code = codec.encode(b"TTTGGA").unwrap();
        let rc = codec.reverse_complement(code);
        assert_eq!(codec.canonical(code), code.min(rc));
        assert_eq!(codec.canonical(code), codec.canonical(rc), "strand symmetric");
    }

    #[test]
    fn rolling_iterator_matches_naive() {
        let codec = KmerCodec::new(4);
        let seq = b"ACGTACGTTGCA";
        let rolled: Vec<_> = codec.kmers_of(seq).collect();
        let naive: Vec<_> = (0..=seq.len() - 4)
            .filter_map(|i| codec.encode(&seq[i..i + 4]).map(|c| (i, c)))
            .collect();
        assert_eq!(rolled, naive);
        assert_eq!(rolled.len(), codec.windows_in(seq.len()));
    }

    #[test]
    fn rolling_iterator_skips_ambiguous_windows() {
        let codec = KmerCodec::new(3);
        let seq = b"ACGNTTTA";
        let got: Vec<_> = codec.kmers_of(seq).collect();
        // Valid windows: ACG (0), TTT (4), TTA (5). Everything touching N is out.
        assert_eq!(
            got,
            vec![
                (0, codec.encode(b"ACG").unwrap()),
                (4, codec.encode(b"TTT").unwrap()),
                (5, codec.encode(b"TTA").unwrap()),
            ]
        );
    }

    #[test]
    fn short_reads_yield_nothing() {
        let codec = KmerCodec::new(8);
        assert_eq!(codec.kmers_of(b"ACGT").count(), 0);
        assert_eq!(codec.kmers_of(b"").count(), 0);
        assert_eq!(codec.windows_in(4), 0);
    }

    #[test]
    fn k32_mask_covers_all_bits() {
        let codec = KmerCodec::new(32);
        let seq = [b'T'; 32];
        let code = codec.encode(&seq).unwrap();
        assert_eq!(code, u64::MAX);
        assert_eq!(codec.decode(code), seq.to_vec());
        assert_eq!(codec.reverse_complement(code), codec.encode(&[b'A'; 32]).unwrap());
    }
}
