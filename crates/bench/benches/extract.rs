//! Extraction-kernel benchmarks: base classification per SWAR/SIMD
//! kernel, and the fused k-mer+tile scan end-to-end per kernel.
//!
//! This isolates the Step II hot loop that the pipelined build leans on:
//! `Kernel::classify` batches the per-byte base decision 8–32 bytes at a
//! time, and `fused_scan_into_with` turns the classified run structure
//! into the k-mer/tile streams. CI uploads the output so kernel-level
//! regressions show up next to the BENCH_*.json end-to-end floors.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnaseq::simd::Kernel;
use dnaseq::{FusedScratch, TileCodec};
use reptile_bench::workloads::smoke;

fn bench_classify_kernels(c: &mut Criterion) {
    let ds = smoke();
    let total_bases: u64 = ds.reads.iter().map(|r| r.len() as u64).sum();
    let longest = ds.reads.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut out = vec![0u8; longest];
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Bytes(total_bases));
    for kernel in Kernel::available() {
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for read in &ds.reads {
                    kernel.classify(&read.seq, &mut out);
                    acc ^= u64::from(out[read.len() / 2]);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_fused_scan_kernels(c: &mut Criterion) {
    let ds = smoke();
    let codec = TileCodec::new(12, 6);
    let total_bases: u64 = ds.reads.iter().map(|r| r.len() as u64).sum();
    let mut scratch = FusedScratch::default();
    let mut g = c.benchmark_group("fused_scan");
    g.throughput(Throughput::Bytes(total_bases));
    for kernel in Kernel::available() {
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for read in &ds.reads {
                    codec.fused_scan_into_with(kernel, &read.seq, &mut scratch, |item| {
                        acc ^= item.kmer;
                    });
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classify_kernels, bench_fused_scan_kernels);
criterion_main!(benches);
