//! One benchmark per table/figure of the paper: each `bench_*` times the
//! regeneration path of that experiment at smoke scale (the `figures`
//! binary runs them at full figure scale; these keep the regeneration
//! code exercised by `cargo bench` and track its performance).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use reptile_bench::figures;
use reptile_bench::workloads::{smoke, smoke_params};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(figures::table1())));
}

fn bench_fig2(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_ranks_per_node", |b| b.iter(|| black_box(figures::fig2(&ds, p, 1))));
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_spectrum_uniformity", |b| b.iter(|| black_box(figures::fig3(&ds, p))));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_load_balance", |b| b.iter(|| black_box(figures::fig4(&ds, p, 1))));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_heuristics", |b| b.iter(|| black_box(figures::fig5(&ds, p, 1))));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_ecoli_scaling", |b| b.iter(|| black_box(figures::fig6(&ds, p, 1))));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_drosophila_scaling", |b| b.iter(|| black_box(figures::fig7(&ds, p, 1))));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_human_scaling", |b| b.iter(|| black_box(figures::fig8(&ds, p, 1))));
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8
);
criterion_main!(benches);
