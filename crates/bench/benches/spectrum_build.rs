//! Criterion benchmark for the spectrum-construction phase: the serial
//! reference builder vs the pipelined fused-scan builder (1 and 4
//! extraction workers), single rank, plus the batched multi-rank build
//! with and without the double-buffered exchange overlap. The
//! CI-tracked JSON twin of these numbers is
//! `reptile_bench::build_bench` (`figures -- bench-json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mpisim::Universe;
use reptile_bench::build_bench::build_workload;
use reptile_bench::workloads::smoke_params;
use reptile_dist::spectrum::{build_distributed, build_distributed_serial};
use reptile_dist::HeuristicConfig;

fn bench_single_rank(c: &mut Criterion) {
    let reads = build_workload(6_000, 60, 3);
    let p = smoke_params();
    let mut g = c.benchmark_group("spectrum_build_single_rank");
    g.sample_size(10);
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| {
            let r = &reads;
            Universe::new(1).run(|comm| {
                black_box(build_distributed_serial(comm, r, 2000, &p, &HeuristicConfig::base()).1)
            })
        })
    });
    for threads in [1usize, 4] {
        let name = format!("pipelined_{threads}t");
        g.bench_function(name.as_str(), |b| {
            b.iter(|| {
                let r = &reads;
                Universe::new(1).run(|comm| {
                    black_box(
                        build_distributed(comm, r, 2000, &p, &HeuristicConfig::base(), threads).1,
                    )
                })
            })
        });
    }
    g.finish();
}

fn bench_batched_overlap(c: &mut Criterion) {
    let reads = build_workload(6_000, 60, 3);
    let p = smoke_params();
    let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
    let np = 4;
    let mut g = c.benchmark_group("spectrum_build_np4_batched");
    g.sample_size(10);
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("serial_blocking", |b| {
        b.iter(|| {
            let r = &reads;
            Universe::new(np).run(|comm| {
                let n = r.len();
                let (lo, hi) = (comm.rank() * n / np, (comm.rank() + 1) * n / np);
                black_box(build_distributed_serial(comm, &r[lo..hi], 500, &p, &heur).1)
            })
        })
    });
    g.bench_function("pipelined_overlapped_2t", |b| {
        b.iter(|| {
            let r = &reads;
            Universe::new(np).run(|comm| {
                let n = r.len();
                let (lo, hi) = (comm.rank() * n / np, (comm.rank() + 1) * n / np);
                black_box(build_distributed(comm, &r[lo..hi], 500, &p, &heur, 2).1)
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_rank, bench_batched_overlap);
criterion_main!(benches);
