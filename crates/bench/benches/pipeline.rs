//! Pipeline-level benchmarks: spectrum construction (sequential vs
//! distributed), the load-balancing shuffle, full correction, and the
//! message-passing runtime's collectives.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mpisim::Universe;
use reptile::correct_dataset;
use reptile::spectrum::LocalSpectra;
use reptile_bench::workloads::{smoke, smoke_params};
use reptile_dist::balance::shuffle_reads;
use reptile_dist::spectrum::build_distributed;
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};

fn bench_spectrum_build(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("spectrum_build");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ds.reads.len() as u64));
    g.bench_function("sequential", |b| b.iter(|| black_box(LocalSpectra::build(&ds.reads, &p))));
    g.bench_function("distributed_np4", |b| {
        b.iter(|| {
            let reads = &ds.reads;
            Universe::new(4).run(|comm| {
                let mine: Vec<_> = reads
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == comm.rank())
                    .map(|(_, r)| r.clone())
                    .collect();
                build_distributed(comm, &mine, 2000, &p, &HeuristicConfig::base(), 2).1
            })
        })
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let ds = smoke();
    let mut g = c.benchmark_group("load_balance_shuffle");
    g.sample_size(20);
    g.bench_function("np4", |b| {
        b.iter(|| {
            let reads = &ds.reads;
            Universe::new(4).run(|comm| {
                let per = reads.len() / 4;
                let lo = comm.rank() * per;
                let hi = if comm.rank() == 3 { reads.len() } else { lo + per };
                shuffle_reads(comm, reads[lo..hi].to_vec()).len()
            })
        })
    });
    g.finish();
}

fn bench_correction(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut g = c.benchmark_group("correction");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ds.reads.len() as u64));
    g.bench_function("sequential", |b| b.iter(|| black_box(correct_dataset(&ds.reads, &p))));
    g.bench_function("distributed_np4", |b| {
        let cfg = EngineConfig::new(4, p);
        b.iter(|| black_box(run_distributed(&cfg, &ds.reads)))
    });
    g.bench_function("distributed_np4_replicated", |b| {
        let mut cfg = EngineConfig::new(4, p);
        cfg.heuristics = HeuristicConfig::replicate_both();
        b.iter(|| black_box(run_distributed(&cfg, &ds.reads)))
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_collectives");
    g.sample_size(20);
    g.bench_function("alltoallv_np8_1k_each", |b| {
        b.iter(|| {
            Universe::new(8).run(|comm| {
                let send: Vec<Vec<u64>> = (0..8).map(|d| vec![d as u64; 1024]).collect();
                comm.alltoallv(send).len()
            })
        })
    });
    g.bench_function("p2p_pingpong_1k", |b| {
        b.iter(|| {
            Universe::new(2).run(|comm| {
                use mpisim::{Source, TagSel};
                if comm.rank() == 0 {
                    for i in 0..1024u32 {
                        comm.send(1, 1, i.to_le_bytes().to_vec());
                        comm.recv(Source::Rank(1), TagSel::Tag(2));
                    }
                } else {
                    for _ in 0..1024 {
                        let m = comm.recv(Source::Rank(0), TagSel::Tag(1));
                        comm.send(0, 2, m.payload);
                    }
                }
            })
        })
    });
    g.finish();
}

fn bench_spectrum_layouts(c: &mut Criterion) {
    use reptile::layouts::{EytzingerKmerSpectrum, SortedKmerSpectrum};
    let ds = smoke();
    let p = smoke_params();
    let spectra = LocalSpectra::build(&ds.reads, &p);
    let hash = &spectra.kmers;
    let sorted = SortedKmerSpectrum::from_spectrum(hash);
    let eytzinger = EytzingerKmerSpectrum::from_spectrum(hash);
    // probe stream: mix of present and absent codes, like correction
    let kcodec = p.kmer_codec();
    let probes: Vec<u64> = ds.reads[..300]
        .iter()
        .flat_map(|r| kcodec.kmers_of(&r.seq).map(|(_, c)| c).collect::<Vec<_>>())
        .collect();
    let mut g = c.benchmark_group("spectrum_layouts");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("hash_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &code in &probes {
                acc += hash.count(black_box(code)) as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("sorted_binary_search", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &code in &probes {
                acc += sorted.count(black_box(code)) as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("eytzinger_cache_aware", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &code in &probes {
                acc += eytzinger.count(black_box(code)) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spectrum_build,
    bench_shuffle,
    bench_correction,
    bench_collectives,
    bench_spectrum_layouts
);
criterion_main!(benches);
