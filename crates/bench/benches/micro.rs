//! Micro-benchmarks of the hot primitives: k-mer extraction, owner
//! hashing, Hamming-neighbour enumeration, spectrum lookups, wire codecs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnaseq::neighbors::neighbors_at_positions;
use dnaseq::{owner_of, KmerCodec, TileCodec};
use reptile::spectrum::LocalSpectra;
use reptile::SpectrumAccess;
use reptile_bench::workloads::{smoke, smoke_params};

fn bench_kmer_extraction(c: &mut Criterion) {
    let ds = smoke();
    let codec = KmerCodec::new(12);
    let total_bases: u64 = ds.reads.iter().map(|r| r.len() as u64).sum();
    let mut g = c.benchmark_group("kmer_extraction");
    g.throughput(Throughput::Bytes(total_bases));
    g.bench_function("rolling_k12", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for read in &ds.reads {
                for (_, code) in codec.kmers_of(&read.seq) {
                    acc ^= code;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_tile_extraction(c: &mut Criterion) {
    let ds = smoke();
    let codec = TileCodec::new(12, 6);
    let mut g = c.benchmark_group("tile_extraction");
    g.bench_function("tiles_k12_o6", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for read in &ds.reads {
                for (_, code) in codec.tiles_of(&read.seq) {
                    acc ^= code;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_owner_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("owner_hash");
    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("mix64_mod_1024", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for code in 0..(1u64 << 16) {
                acc += owner_of(black_box(code), 1024);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_neighbors(c: &mut Criterion) {
    let tcodec = TileCodec::new(12, 6); // tile length 18
    let tile = tcodec.encode(b"ACGTACGTACGTACGTAC").unwrap();
    let mut g = c.benchmark_group("neighbors");
    for (label, positions, maxe) in [
        ("p4_d1", vec![2usize, 7, 11, 15], 1usize),
        ("p4_d2", vec![2, 7, 11, 15], 2),
        ("p8_d2", vec![0, 2, 4, 7, 9, 11, 15, 17], 2),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(neighbors_at_positions(black_box(tile), 18, &positions, maxe)))
        });
    }
    g.finish();
}

fn bench_spectrum_lookup(c: &mut Criterion) {
    let ds = smoke();
    let p = smoke_params();
    let mut spectra = LocalSpectra::build(&ds.reads, &p);
    let kcodec = p.kmer_codec();
    let codes: Vec<u64> = ds.reads[..200]
        .iter()
        .flat_map(|r| kcodec.kmers_of(&r.seq).map(|(_, c)| c).collect::<Vec<_>>())
        .collect();
    let mut g = c.benchmark_group("spectrum_lookup");
    g.throughput(Throughput::Elements(codes.len() as u64));
    g.bench_function("kmer_counts", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &code in &codes {
                acc += spectra.kmer_count(black_box(code)) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use mpisim::message::{WireReader, WireWriter};
    let mut g = c.benchmark_group("wire_codec");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("request_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let mut w = WireWriter::with_capacity(9);
                w.put_u8(0).put_u64(i);
                let buf = w.finish();
                let mut r = WireReader::new(&buf);
                let _ = r.get_u8();
                acc ^= r.get_u64();
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kmer_extraction,
    bench_tile_extraction,
    bench_owner_hash,
    bench_neighbors,
    bench_spectrum_lookup,
    bench_wire_codec
);
criterion_main!(benches);
