//! Lookup-aggregation benchmark: base per-key round trips vs batched
//! per-owner requests (the `aggregate_lookups` heuristic) on the smoke
//! workload, reporting wall time per run plus the remote-message counts
//! from [`reptile_dist::LookupStats`] — the quantity the aggregation is
//! designed to minimize.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use reptile_bench::workloads::{smoke, smoke_params};
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig, RunOutput};

const NP: usize = 4;

fn config(aggregate: bool) -> EngineConfig {
    let mut cfg = EngineConfig::new(NP, smoke_params());
    cfg.heuristics = HeuristicConfig { aggregate_lookups: aggregate, ..HeuristicConfig::base() };
    cfg
}

fn message_counts(out: &RunOutput) -> (u64, u64, u64) {
    let sum = |f: &dyn Fn(&reptile_dist::LookupStats) -> u64| -> u64 {
        out.report.ranks.iter().map(|r| f(&r.lookups)).sum()
    };
    (sum(&|l| l.remote_messages), sum(&|l| l.batches_sent), sum(&|l| l.prefetch_hits))
}

fn bench_lookup_batching(c: &mut Criterion) {
    let ds = smoke();
    let base_cfg = config(false);
    let agg_cfg = config(true);

    // one instrumented run per mode for the message-count report
    let base = run_distributed(&base_cfg, &ds.reads);
    let agg = run_distributed(&agg_cfg, &ds.reads);
    assert_eq!(base.corrected, agg.corrected, "aggregation must not change output");
    let (base_msgs, _, _) = message_counts(&base);
    let (agg_msgs, batches, hits) = message_counts(&agg);
    println!("lookup_batching: remote request messages, np={NP}, {} reads", ds.reads.len());
    println!("  per-key   {base_msgs:>10} messages");
    println!(
        "  aggregated{agg_msgs:>10} messages ({batches} batches, {hits} prefetch hits, {:.1}x fewer)",
        base_msgs as f64 / agg_msgs.max(1) as f64
    );

    let mut g = c.benchmark_group("lookup_batching");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ds.reads.len() as u64));
    g.bench_function("per_key_np4", |b| {
        b.iter(|| black_box(run_distributed(&base_cfg, &ds.reads)))
    });
    g.bench_function("aggregated_np4", |b| {
        b.iter(|| black_box(run_distributed(&agg_cfg, &ds.reads)))
    });
    g.finish();
}

criterion_group!(benches, bench_lookup_batching);
criterion_main!(benches);
