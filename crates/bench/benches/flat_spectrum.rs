//! Race the flat open-addressing spectrum store against the `FxHashMap`
//! it replaced and the read-only sorted/Eytzinger layouts from
//! `reptile::layouts`, across the three access patterns the pipeline
//! actually exercises: insert-heavy construction (Step II), hit/miss
//! point lookups (Step IV correction), and full-table sweeps (comm-thread
//! batch serving). Byte-accurate footprints are measured separately by
//! `reptile_bench::spectrum_bench` (`figures -- bench-json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnaseq::{mix64, FxHashMap};
use reptile::layouts::{EytzingerKmerSpectrum, SortedKmerSpectrum};
use reptile::spectrum::{KmerSpectrum, Normalized};
use reptile::FlatKmerTable;

const N: usize = 100_000;

/// Distinct well-mixed keys, the spectrum-construction stream.
fn keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(mix64).collect()
}

/// Absent keys, disjoint from `keys` (`mix64` is a bijection).
fn absent(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| mix64(i + (1 << 40))).collect()
}

fn bench_build(c: &mut Criterion) {
    let ks = keys(N);
    let mut g = c.benchmark_group("flat_spectrum_build");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ks.len() as u64));
    g.bench_function("flat_table", |b| {
        b.iter(|| {
            let mut t = FlatKmerTable::new();
            for &k in &ks {
                t.add_count(black_box(k), 1);
            }
            black_box(t.len())
        })
    });
    g.bench_function("fxhashmap", |b| {
        b.iter(|| {
            let mut m: FxHashMap<u64, u32> = FxHashMap::default();
            for &k in &ks {
                *m.entry(black_box(k)).or_insert(0) += 1;
            }
            black_box(m.len())
        })
    });
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let ks = keys(N);
    let mut flat = FlatKmerTable::new();
    let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
    // non-canonical spectrum so layouts index the same raw keys
    let mut spectrum = KmerSpectrum::new(dnaseq::KmerCodec::new(32), false);
    for &k in &ks {
        flat.add_count(k, 1);
        *fx.entry(k).or_insert(0) += 1;
        spectrum.add_count(Normalized::assume(k), 1);
    }
    let sorted = SortedKmerSpectrum::from_spectrum(&spectrum);
    let eytzinger = EytzingerKmerSpectrum::from_spectrum(&spectrum);

    for (pattern, probes) in [("hit", ks.clone()), ("miss", absent(N))] {
        let name = format!("flat_spectrum_lookup_{pattern}");
        let mut g = c.benchmark_group(&name);
        g.throughput(Throughput::Elements(probes.len() as u64));
        g.bench_function("flat_table", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &probes {
                    acc += flat.get(black_box(k)).unwrap_or(0) as u64;
                }
                black_box(acc)
            })
        });
        g.bench_function("fxhashmap", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &probes {
                    acc += fx.get(&black_box(k)).copied().unwrap_or(0) as u64;
                }
                black_box(acc)
            })
        });
        g.bench_function("sorted_binary_search", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &probes {
                    acc += sorted.count(black_box(k)) as u64;
                }
                black_box(acc)
            })
        });
        g.bench_function("eytzinger_cache_aware", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &probes {
                    acc += eytzinger.count(black_box(k)) as u64;
                }
                black_box(acc)
            })
        });
        g.finish();
    }
}

fn bench_sweep(c: &mut Criterion) {
    let ks = keys(N);
    let mut flat = FlatKmerTable::new();
    let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
    for &k in &ks {
        flat.add_count(k, 1);
        *fx.entry(k).or_insert(0) += 1;
    }
    let mut g = c.benchmark_group("flat_spectrum_sweep");
    g.throughput(Throughput::Elements(flat.len() as u64));
    g.bench_function("flat_table", |b| {
        b.iter(|| black_box(flat.iter().map(|(_, c)| c as u64).sum::<u64>()))
    });
    g.bench_function("fxhashmap", |b| {
        b.iter(|| black_box(fx.values().map(|&c| c as u64).sum::<u64>()))
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_lookups, bench_sweep);
criterion_main!(benches);
