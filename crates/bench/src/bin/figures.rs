//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p reptile-bench --release --bin figures -- all
//! cargo run -p reptile-bench --release --bin figures -- table1 fig4 fig6
//! ```
//!
//! Output: the same rows/series the paper reports, with modeled BG/Q
//! times extrapolated to paper scale (see DESIGN.md §6; absolute numbers
//! are calibrated loosely, shapes are the claim).

use reptile_bench::figures::*;
use reptile_bench::workloads::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "partial",
            "ablation-chunk",
            "ablation-q",
            "baseline",
            "prior-art",
            "latency",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let params = figure_params();
    for item in wanted {
        match item {
            "table1" => println!("{}", table1()),
            "fig2" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig2(&fig2(&ds, params, ECOLI_DIVISOR)));
            }
            "fig3" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig3(&fig3(&ds, params)));
            }
            "fig4" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig4(&fig4(&ds, params, ECOLI_DIVISOR)));
            }
            "fig5" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig5(&fig5(&ds, params, ECOLI_DIVISOR)));
            }
            "fig6" => {
                let ds = ecoli_scaled();
                println!("{}", render_scaling(&fig6(&ds, params, ECOLI_DIVISOR)));
            }
            "fig7" => {
                let ds = drosophila_scaled();
                println!("{}", render_scaling(&fig7(&ds, params, DROSOPHILA_DIVISOR)));
            }
            "fig8" => {
                let ds = human_scaled();
                println!("{}", render_scaling(&fig8(&ds, params, HUMAN_DIVISOR)));
            }
            "partial" => {
                let ds = ecoli_scaled();
                println!("{}", render_partial(&partial_sweep(&ds, params, ECOLI_DIVISOR)));
            }
            "ablation-chunk" => {
                let ds = ecoli_scaled();
                println!("{}", render_chunk(&ablation_chunk(&ds, params, ECOLI_DIVISOR)));
            }
            "ablation-q" => {
                let ds = ecoli_scaled();
                println!("{}", render_quality(&ablation_quality(&ds, params)));
            }
            "baseline" => {
                let ds = ecoli_scaled();
                println!("{}", render_baseline(&baseline_comparison(&ds, params)));
            }
            "prior-art" => {
                let ds = ecoli_scaled();
                println!("{}", render_prior_art(&prior_art_comparison(&ds, params, ECOLI_DIVISOR)));
            }
            "latency" => {
                let ds = ecoli_scaled();
                println!("{}", render_latency(&latency_sweep(&ds, params, ECOLI_DIVISOR)));
            }
            // Not part of `all`: writes BENCH_spectrum.json,
            // BENCH_build.json and BENCH_snapshot.json instead of
            // printing a paper table (CI runs it explicitly).
            "bench-json" => {
                let report = reptile_bench::spectrum_bench::run(200_000);
                let json = reptile_bench::spectrum_bench::render_json(&report);
                std::fs::write("BENCH_spectrum.json", &json).expect("write BENCH_spectrum.json");
                print!("{json}");
                eprintln!("wrote BENCH_spectrum.json");
                let build = reptile_bench::build_bench::run(20_000);
                let json = reptile_bench::build_bench::render_json(&build);
                std::fs::write("BENCH_build.json", &json).expect("write BENCH_build.json");
                print!("{json}");
                eprintln!("wrote BENCH_build.json");
                let snap = reptile_bench::snapshot_bench::run(20_000);
                let json = reptile_bench::snapshot_bench::render_json(&snap);
                std::fs::write("BENCH_snapshot.json", &json).expect("write BENCH_snapshot.json");
                print!("{json}");
                eprintln!("wrote BENCH_snapshot.json");
            }
            other => {
                eprintln!("unknown item '{other}' (expected table1, fig2..fig8, bench-json, all)");
                std::process::exit(2);
            }
        }
    }
}
