//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p reptile-bench --release --bin figures -- all
//! cargo run -p reptile-bench --release --bin figures -- table1 fig4 fig6
//! ```
//!
//! Output: the same rows/series the paper reports, with modeled BG/Q
//! times extrapolated to paper scale (see DESIGN.md §6; absolute numbers
//! are calibrated loosely, shapes are the claim).

use reptile_bench::figures::*;
use reptile_bench::workloads::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "partial",
            "ablation-chunk",
            "ablation-q",
            "ablation-balance",
            "baseline",
            "prior-art",
            "latency",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let params = figure_params();
    for item in wanted {
        match item {
            "table1" => println!("{}", table1()),
            "fig2" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig2(&fig2(&ds, params, ECOLI_DIVISOR)));
            }
            "fig3" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig3(&fig3(&ds, params)));
            }
            "fig4" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig4(&fig4(&ds, params, ECOLI_DIVISOR)));
            }
            "fig5" => {
                let ds = ecoli_scaled();
                println!("{}", render_fig5(&fig5(&ds, params, ECOLI_DIVISOR)));
            }
            "fig6" => {
                let ds = ecoli_scaled();
                println!("{}", render_scaling(&fig6(&ds, params, ECOLI_DIVISOR)));
            }
            "fig7" => {
                let ds = drosophila_scaled();
                println!("{}", render_scaling(&fig7(&ds, params, DROSOPHILA_DIVISOR)));
            }
            "fig8" => {
                let ds = human_scaled();
                println!("{}", render_scaling(&fig8(&ds, params, HUMAN_DIVISOR)));
            }
            "partial" => {
                let ds = ecoli_scaled();
                println!("{}", render_partial(&partial_sweep(&ds, params, ECOLI_DIVISOR)));
            }
            "ablation-chunk" => {
                let ds = ecoli_scaled();
                println!("{}", render_chunk(&ablation_chunk(&ds, params, ECOLI_DIVISOR)));
            }
            "ablation-q" => {
                let ds = ecoli_scaled();
                println!("{}", render_quality(&ablation_quality(&ds, params)));
            }
            "ablation-balance" => println!("{}", render_balance(&ablation_balance())),
            "baseline" => {
                let ds = ecoli_scaled();
                println!("{}", render_baseline(&baseline_comparison(&ds, params)));
            }
            "prior-art" => {
                let ds = ecoli_scaled();
                println!("{}", render_prior_art(&prior_art_comparison(&ds, params, ECOLI_DIVISOR)));
            }
            "latency" => {
                let ds = ecoli_scaled();
                println!("{}", render_latency(&latency_sweep(&ds, params, ECOLI_DIVISOR)));
            }
            // Not part of `all`: writes BENCH_spectrum.json,
            // BENCH_build.json and BENCH_snapshot.json instead of
            // printing a paper table (CI runs it explicitly).
            "bench-json" => {
                let report = reptile_bench::spectrum_bench::run(200_000);
                let json = reptile_bench::spectrum_bench::render_json(&report);
                std::fs::write("BENCH_spectrum.json", &json).expect("write BENCH_spectrum.json");
                print!("{json}");
                eprintln!("wrote BENCH_spectrum.json");
                let build = reptile_bench::build_bench::run(20_000);
                let json = reptile_bench::build_bench::render_json(&build);
                std::fs::write("BENCH_build.json", &json).expect("write BENCH_build.json");
                print!("{json}");
                eprintln!("wrote BENCH_build.json");
                let snap = reptile_bench::snapshot_bench::run(20_000);
                let json = reptile_bench::snapshot_bench::render_json(&snap);
                std::fs::write("BENCH_snapshot.json", &json).expect("write BENCH_snapshot.json");
                print!("{json}");
                eprintln!("wrote BENCH_snapshot.json");
                let bal = reptile_bench::balance_bench::run();
                let json = reptile_bench::balance_bench::render_json(&bal);
                std::fs::write("BENCH_balance.json", &json).expect("write BENCH_balance.json");
                print!("{json}");
                eprintln!("wrote BENCH_balance.json");
                let serve = reptile_bench::serve_bench::run(1_050_000, 24, 100);
                let json = reptile_bench::serve_bench::render_json(&serve);
                std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
                print!("{json}");
                eprintln!("wrote BENCH_serve.json");
                let ooc = reptile_bench::ooc_bench::run(20_000);
                let json = reptile_bench::ooc_bench::render_json(&ooc);
                std::fs::write("BENCH_ooc.json", &json).expect("write BENCH_ooc.json");
                print!("{json}");
                eprintln!("wrote BENCH_ooc.json");
            }
            // Not part of `all`: gates CI on the measured perf floors
            // recorded by `bench-json` (run that first in the same
            // working directory).
            "perf-floor" => {
                let build = std::fs::read_to_string("BENCH_build.json")
                    .expect("read BENCH_build.json (run `figures -- bench-json` first)");
                let spectrum = std::fs::read_to_string("BENCH_spectrum.json")
                    .expect("read BENCH_spectrum.json (run `figures -- bench-json` first)");
                let speedup = scrape_number(&build, "speedup_4t_measured")
                    .expect("speedup_4t_measured in BENCH_build.json");
                // Both engines report bulk_ns_per_key; the floor is on
                // the flat table's line only.
                let flat_line = spectrum
                    .lines()
                    .find(|l| l.contains("\"flat\""))
                    .expect("flat entry in BENCH_spectrum.json");
                let bulk = scrape_number(flat_line, "bulk_ns_per_key")
                    .expect("bulk_ns_per_key in BENCH_spectrum.json flat entry");
                let mut ok = true;
                println!("perf-floor: measured 4-worker build speedup {speedup:.2} (floor 3.00)");
                ok &= speedup >= 3.0;
                println!("perf-floor: flat-table bulk load {bulk:.1} ns/key (ceiling 30.0)");
                ok &= bulk <= 30.0;
                if !ok {
                    eprintln!("perf-floor: FAILED");
                    std::process::exit(1);
                }
                println!("perf-floor: OK");
            }
            // Not part of `all`: gates CI on the adaptive-balancing
            // floors recorded by `bench-json` in BENCH_balance.json.
            "balance-floor" => {
                let bal = std::fs::read_to_string("BENCH_balance.json")
                    .expect("read BENCH_balance.json (run `figures -- bench-json` first)");
                let speedup = scrape_number(&bal, "skewed_speedup")
                    .expect("skewed_speedup in BENCH_balance.json");
                let ratio = scrape_number(&bal, "uniform_ratio")
                    .expect("uniform_ratio in BENCH_balance.json");
                let reduction = scrape_number(&bal, "remote_reduction")
                    .expect("remote_reduction in BENCH_balance.json");
                let mut ok = true;
                println!("balance-floor: adaptive speedup on skew {speedup:.3}x (floor 1.50)");
                ok &= speedup >= 1.5;
                println!("balance-floor: uniform adaptive/static ratio {ratio:.3} (0.95..=1.05)");
                ok &= (0.95..=1.05).contains(&ratio);
                println!("balance-floor: remote-lookup reduction on skew {reduction:.3} (> 0)");
                ok &= reduction > 0.0;
                if !ok {
                    eprintln!("balance-floor: FAILED");
                    std::process::exit(1);
                }
                println!("balance-floor: OK");
            }
            // Not part of `all`: gates CI on the serve-plane floors
            // recorded by `bench-json` in BENCH_serve.json.
            "serve-floor" => {
                let serve = std::fs::read_to_string("BENCH_serve.json")
                    .expect("read BENCH_serve.json (run `figures -- bench-json` first)");
                let speedup = scrape_number(&serve, "speedup_vs_batch")
                    .expect("speedup_vs_batch in BENCH_serve.json");
                let total = scrape_number(&serve, "requests_total")
                    .expect("requests_total in BENCH_serve.json");
                let mid_p99 =
                    scrape_number(&serve, "mid_p99_ms").expect("mid_p99_ms in BENCH_serve.json");
                let rejected = scrape_number(&serve, "overload_rejected")
                    .expect("overload_rejected in BENCH_serve.json");
                let mut ok = true;
                println!("serve-floor: persistent-engine speedup {speedup:.3}x (floor 2.00)");
                ok &= speedup >= 2.0;
                println!("serve-floor: total requests {total:.0} (floor 1,000,000)");
                ok &= total >= 1_000_000.0;
                println!("serve-floor: mid-load p99 {mid_p99:.3} ms (ceiling 600.0)");
                ok &= mid_p99 <= 600.0;
                println!("serve-floor: overload rejections {rejected:.0} (> 0)");
                ok &= rejected > 0.0;
                if !ok {
                    eprintln!("serve-floor: FAILED");
                    std::process::exit(1);
                }
                println!("serve-floor: OK");
            }
            // Not part of `all`: gates CI on the erasure-coded snapshot
            // floors recorded by `bench-json` in BENCH_snapshot.json —
            // repairing a lost shard must stay well ahead of rebuilding
            // the spectra from reads, and the parity bytes must stay a
            // small tax on the snapshot.
            "repair-floor" => {
                let snap = std::fs::read_to_string("BENCH_snapshot.json")
                    .expect("read BENCH_snapshot.json (run `figures -- bench-json` first)");
                let speedup = scrape_number(&snap, "repair_speedup")
                    .expect("repair_speedup in BENCH_snapshot.json");
                let overhead = scrape_number(&snap, "parity_overhead")
                    .expect("parity_overhead in BENCH_snapshot.json");
                let repaired = scrape_number(&snap, "repaired_bytes")
                    .expect("repaired_bytes in BENCH_snapshot.json");
                let mut ok = true;
                println!("repair-floor: repairing load vs rebuild {speedup:.2}x (floor 2.00)");
                ok &= speedup >= 2.0;
                println!("repair-floor: parity byte overhead {overhead:.4} (ceiling 0.15)");
                ok &= overhead <= 0.15;
                println!("repair-floor: bytes reconstructed {repaired:.0} (> 0)");
                ok &= repaired > 0.0;
                if !ok {
                    eprintln!("repair-floor: FAILED");
                    std::process::exit(1);
                }
                println!("repair-floor: OK");
            }
            // Not part of `all`: gates CI on the out-of-core build
            // contract recorded by `bench-json` in BENCH_ooc.json — the
            // accounted peak must honor the budget, the spilled build
            // must match the in-memory output, and the time tax must
            // stay bounded.
            "ooc-floor" => {
                let ooc = std::fs::read_to_string("BENCH_ooc.json")
                    .expect("read BENCH_ooc.json (run `figures -- bench-json` first)");
                let budget =
                    scrape_number(&ooc, "budget_bytes").expect("budget_bytes in BENCH_ooc.json");
                let peak = scrape_number(&ooc, "peak_accounted_bytes")
                    .expect("peak_accounted_bytes in BENCH_ooc.json");
                let slowdown =
                    scrape_number(&ooc, "ooc_slowdown").expect("ooc_slowdown in BENCH_ooc.json");
                let runs = scrape_number(&ooc, "runs").expect("spill runs in BENCH_ooc.json");
                let identical = scrape_number(&ooc, "output_identical")
                    .expect("output_identical in BENCH_ooc.json");
                let mut ok = true;
                println!("ooc-floor: peak accounted bytes {peak:.0} (budget {budget:.0})");
                ok &= peak <= budget;
                println!("ooc-floor: spill runs written {runs:.0} (> 0)");
                ok &= runs > 0.0;
                println!("ooc-floor: ooc/in-memory build time {slowdown:.3}x (ceiling 2.50)");
                ok &= slowdown <= 2.5;
                println!("ooc-floor: output identical {identical:.0} (must be 1)");
                ok &= identical == 1.0;
                if !ok {
                    eprintln!("ooc-floor: FAILED");
                    std::process::exit(1);
                }
                println!("ooc-floor: OK");
            }
            other => {
                eprintln!(
                    "unknown item '{other}' (expected table1, fig2..fig8, bench-json, \
                     perf-floor, balance-floor, serve-floor, repair-floor, ooc-floor, all)"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Pull the numeric value of `"key": <number>` out of hand-rendered
/// JSON. The BENCH files are concatenations of small documents, so a
/// full parser buys nothing over scanning for the field.
fn scrape_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
