//! Build-once / correct-many race: rebuilding the pruned spectra from
//! the reads (Steps II–III) vs loading a persisted specstore snapshot.
//!
//! The snapshot's pitch is that a spectrum is built once and then served
//! to many correction runs, so the number that matters is how much
//! cheaper `load_spectrum` is than a rebuild:
//!
//! 1. **zero-copy load** — same rank count as the save: every shard maps
//!    straight into a flat table with no re-hash and no exchange;
//! 2. **re-sharded load** — a different rank count: shard groups are
//!    unioned and re-owned, paying a merge on top of the raw I/O.
//!
//! `run()` measures the rebuild, the save, and both load flavours on a
//! deterministic synthetic dataset, checks the loaded spectra are
//! entry-identical to the rebuilt ones, and renders a
//! `BENCH_snapshot.json` snapshot (`figures -- bench-json`) so the
//! build-vs-load trajectory is tracked in CI.

use genio::dataset::DatasetProfile;
use reptile::{LocalSpectra, ReptileParams};
use reptile_dist::snapshot::{load_snapshot_serial, save_snapshot_serial};
use reptile_dist::RecoveryPolicy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Rank count the snapshot is saved at (and zero-copy loaded at).
pub const SAVE_NP: usize = 4;
/// Rank count the re-sharded load runs at.
pub const RESHARD_NP: usize = 3;
/// Rank count for the parity/repair leg. Wider than [`SAVE_NP`] so one
/// parity shard per kind amortises to a small byte overhead (~1/8).
pub const PARITY_NP: usize = 8;
/// Parity shards per (kind, shard-group) in the repair leg.
pub const PARITY_M: usize = 1;
/// Rank whose k-mer shard the repair leg truncates.
const CHOP_RANK: usize = 3;
/// Bytes kept by the truncation — past the header, well short of the payload.
const CHOP_KEEP: u64 = 64;

/// The race result, rendered by [`render_json`].
#[derive(Clone, Copy, Debug)]
pub struct SnapshotBenchReport {
    /// Reads in the workload.
    pub reads: usize,
    /// Distinct k-mers surviving the threshold prune.
    pub kmer_entries: usize,
    /// Distinct tiles surviving the threshold prune.
    pub tile_entries: usize,
    /// Total snapshot size on disk (all shards + manifest).
    pub snapshot_bytes: u64,
    /// Rebuild both spectra from the reads, ns (best-of wall time).
    pub build_ns: f64,
    /// Persist the spectra as a [`SAVE_NP`]-way snapshot, ns.
    pub save_ns: f64,
    /// Load the snapshot back at the same rank count, ns.
    pub load_ns: f64,
    /// Load the snapshot at [`RESHARD_NP`] ranks (union + re-own), ns.
    pub reshard_load_ns: f64,
    /// Snapshot size at [`PARITY_NP`] ranks with no parity, bytes.
    pub plain_bytes: u64,
    /// Snapshot size at [`PARITY_NP`] ranks with [`PARITY_M`] parity
    /// shards per kind, bytes.
    pub parity_bytes: u64,
    /// Persist with parity encoding at [`PARITY_NP`] ranks, ns.
    pub parity_save_ns: f64,
    /// Load with one k-mer shard truncated, reconstructing it from the
    /// survivors + parity on every load (no rewrite), ns.
    pub repair_load_ns: f64,
    /// Bytes reconstructed by the repair leg (sanity: > 0).
    pub repaired_bytes: u64,
}

impl SnapshotBenchReport {
    /// How many times faster the zero-copy load is than rebuilding.
    pub fn load_speedup(&self) -> f64 {
        self.build_ns / self.load_ns.max(1.0)
    }

    /// How many times faster the re-sharded load is than rebuilding.
    pub fn reshard_speedup(&self) -> f64 {
        self.build_ns / self.reshard_load_ns.max(1.0)
    }

    /// Extra bytes the parity shards cost, as a fraction of the
    /// parity-free snapshot (~`PARITY_M / PARITY_NP` plus rounding to
    /// the widest shard in each group).
    pub fn parity_overhead(&self) -> f64 {
        (self.parity_bytes.saturating_sub(self.plain_bytes)) as f64 / self.plain_bytes.max(1) as f64
    }

    /// How many times faster a repairing load is than rebuilding from
    /// reads — the number that justifies parity over re-running Step II.
    pub fn repair_speedup(&self) -> f64 {
        self.build_ns / self.repair_load_ns.max(1.0)
    }
}

/// Deterministic spectrum workload: `n` reads over a genome sized for
/// ~15X coverage, so the prune keeps genome-backed entries and drops the
/// error singletons — the operating point a served snapshot holds.
fn workload(n: usize) -> Vec<dnaseq::Read> {
    DatasetProfile {
        name: "snap".into(),
        genome_len: (n * 60 / 15).max(500),
        read_len: 60,
        n_reads: n,
        base_error_rate: 0.004,
        hotspot_count: 2,
        hotspot_multiplier: 6.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(0x5EED_5A9D)
    .reads
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 3,
        ..ReptileParams::for_tests()
    }
}

/// Best-of-`reps` wall time of `f`, in ns per `ops` operations.
fn time_ns_per_op<R>(reps: usize, ops: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best / ops.max(1) as f64
}

/// A scratch directory unique per call even when tests run concurrently
/// in one process (same pid).
fn scratch_dir() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reptile-snap-bench-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type SortedEntries = (Vec<(u64, u32)>, Vec<(u128, u32)>);

fn sorted_entries(s: &LocalSpectra) -> SortedEntries {
    let mut k: Vec<_> = s.kmers.iter().collect();
    k.sort_unstable();
    let mut t: Vec<_> = s.tiles.iter().collect();
    t.sort_unstable();
    (k, t)
}

/// Run the race on `n` reads (use ≥ 2_000 for stable numbers; the
/// `bench-json` subcommand uses 20_000).
pub fn run(n: usize) -> SnapshotBenchReport {
    let reads = workload(n);
    let p = params();
    let dir = scratch_dir();

    // --- rebuild from reads (the cost `load_spectrum` avoids) ---
    let build_ns = time_ns_per_op(3, 1, || LocalSpectra::build(&reads, &p));
    let built = LocalSpectra::build(&reads, &p);

    // --- persist (save overwrites in place, so repetition is safe) ---
    let save_ns = time_ns_per_op(3, 1, || {
        save_snapshot_serial(&dir, &p, SAVE_NP, 0, &built.kmers, &built.tiles)
            .expect("save snapshot")
    });
    let per_rank = save_snapshot_serial(&dir, &p, SAVE_NP, 0, &built.kmers, &built.tiles)
        .expect("save snapshot");
    let snapshot_bytes: u64 = per_rank.iter().sum();

    // --- load back, zero-copy then re-sharded ---
    let load_ns = time_ns_per_op(5, 1, || {
        load_snapshot_serial(&dir, &p, SAVE_NP, RecoveryPolicy::Strict, None)
            .expect("load snapshot")
    });
    let reshard_load_ns = time_ns_per_op(5, 1, || {
        load_snapshot_serial(&dir, &p, RESHARD_NP, RecoveryPolicy::Strict, None)
            .expect("re-sharded load")
    });

    // The race only counts if both loads reproduce the spectra exactly.
    let zero = load_snapshot_serial(&dir, &p, SAVE_NP, RecoveryPolicy::Strict, None)
        .expect("load snapshot");
    let resharded = load_snapshot_serial(&dir, &p, RESHARD_NP, RecoveryPolicy::Strict, None)
        .expect("re-sharded load");
    assert!(!zero.resharded && resharded.resharded);
    let want = sorted_entries(&built);
    for loaded in [
        LocalSpectra { kmers: zero.kmers, tiles: zero.tiles },
        LocalSpectra { kmers: resharded.kmers, tiles: resharded.tiles },
    ] {
        assert_eq!(sorted_entries(&loaded), want, "loaded spectra must be entry-identical");
    }

    // --- parity leg: encode overhead, then repair a truncated shard ---
    let pdir = scratch_dir();
    let plain_bytes: u64 =
        save_snapshot_serial(&pdir, &p, PARITY_NP, 0, &built.kmers, &built.tiles)
            .expect("plain save")
            .iter()
            .sum();
    let parity_save_ns = time_ns_per_op(3, 1, || {
        save_snapshot_serial(&pdir, &p, PARITY_NP, PARITY_M, &built.kmers, &built.tiles)
            .expect("parity save")
    });
    let parity_bytes: u64 =
        save_snapshot_serial(&pdir, &p, PARITY_NP, PARITY_M, &built.kmers, &built.tiles)
            .expect("parity save")
            .iter()
            .sum();
    // Truncating the same shard to the same length is idempotent, so the
    // chop can ride along on every timed load: each rep pays a full
    // classify → reconstruct → verify pass (rewrite stays off).
    let repair = RecoveryPolicy::Repair { max_lost: PARITY_M, rewrite: false };
    let repair_load_ns = time_ns_per_op(5, 1, || {
        load_snapshot_serial(&pdir, &p, PARITY_NP, repair, Some((CHOP_RANK, CHOP_KEEP)))
            .expect("repairing load")
    });
    let repaired = load_snapshot_serial(&pdir, &p, PARITY_NP, repair, Some((CHOP_RANK, CHOP_KEEP)))
        .expect("repairing load");
    let repaired_bytes: u64 = repaired.per_rank_repair.iter().map(|r| r.bytes_reconstructed).sum();
    assert!(repaired_bytes > 0, "repair leg must actually reconstruct a shard");
    let loaded = LocalSpectra { kmers: repaired.kmers, tiles: repaired.tiles };
    assert_eq!(sorted_entries(&loaded), want, "repaired spectra must be entry-identical");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&pdir);

    SnapshotBenchReport {
        reads: reads.len(),
        kmer_entries: built.kmers.len(),
        tile_entries: built.tiles.len(),
        snapshot_bytes,
        build_ns,
        save_ns,
        load_ns,
        reshard_load_ns,
        plain_bytes,
        parity_bytes,
        parity_save_ns,
        repair_load_ns,
        repaired_bytes,
    }
}

/// Render the `BENCH_snapshot.json` snapshot.
pub fn render_json(r: &SnapshotBenchReport) -> String {
    format!(
        "{{\n  \"workload\": {{\"reads\": {}, \"kmer_entries\": {}, \"tile_entries\": {}, \
         \"snapshot_bytes\": {}}},\n  \
         \"ns\": {{\"build\": {:.0}, \"save\": {:.0}, \"load\": {:.0}, \"reshard_load\": {:.0}, \
         \"parity_save\": {:.0}, \"repair_load\": {:.0}}},\n  \
         \"parity\": {{\"plain_bytes\": {}, \"parity_bytes\": {}, \"repaired_bytes\": {}}},\n  \
         \"ratios\": {{\"load_speedup\": {:.2}, \"reshard_speedup\": {:.2}, \
         \"repair_speedup\": {:.2}, \"parity_overhead\": {:.4}}}\n}}\n",
        r.reads,
        r.kmer_entries,
        r.tile_entries,
        r.snapshot_bytes,
        r.build_ns,
        r.save_ns,
        r.load_ns,
        r.reshard_load_ns,
        r.parity_save_ns,
        r.repair_load_ns,
        r.plain_bytes,
        r.parity_bytes,
        r.repaired_bytes,
        r.load_speedup(),
        r.reshard_speedup(),
        r.repair_speedup(),
        r.parity_overhead()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: loading a persisted snapshot beats
    /// rebuilding the spectra from the reads — otherwise the
    /// build-once / correct-many mode has no reason to exist. The margin
    /// grows with the read count (load scales with surviving entries,
    /// rebuild with total k-mer occurrences), so 4_000 reads is
    /// comfortably past the crossover even on a noisy CI machine.
    #[test]
    fn snapshot_load_beats_rebuild() {
        let r = run(4_000);
        assert!(r.kmer_entries > 0 && r.snapshot_bytes > 0);
        assert!(
            r.load_speedup() > 1.0,
            "zero-copy load {:.0} ns vs rebuild {:.0} ns — speedup {:.2}x ≤ 1x",
            r.load_ns,
            r.build_ns,
            r.load_speedup()
        );
        assert!(
            r.reshard_speedup() > 1.0,
            "re-sharded load {:.0} ns vs rebuild {:.0} ns — speedup {:.2}x ≤ 1x",
            r.reshard_load_ns,
            r.build_ns,
            r.reshard_speedup()
        );
        assert!(
            r.repair_speedup() > 1.0,
            "repairing load {:.0} ns vs rebuild {:.0} ns — speedup {:.2}x ≤ 1x",
            r.repair_load_ns,
            r.build_ns,
            r.repair_speedup()
        );
        assert!(
            r.parity_overhead() < 0.5,
            "one parity shard over {PARITY_NP} data shards cost {:.1}% extra bytes",
            r.parity_overhead() * 100.0
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = run(2_000);
        let json = render_json(&r);
        assert!(json.contains("\"load_speedup\""));
        assert!(json.contains("\"snapshot_bytes\""));
        assert!(json.contains("\"reshard_load\""));
        assert!(json.contains("\"repair_speedup\""));
        assert!(json.contains("\"parity_overhead\""));
        // braces balance
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
