//! Open-loop serve benchmarks: the long-lived correction service under
//! YCSB-style offered load.
//!
//! Three measurements, one snapshot:
//!
//! 1. **Per-job batch loop** (the old serve mode): every job re-enters
//!    `try_run_distributed` — universe spawn, snapshot load, shuffle,
//!    barriers — per job. This is the baseline the persistent engine
//!    must beat.
//! 2. **Closed-loop serve**: the same jobs stream through one
//!    [`ServeEngine`] as fast as backpressure allows. The sustained
//!    rate is the service's *capacity* `C`, and the ratio against the
//!    batch loop is the headline speedup.
//! 3. **Open-loop sweep**: Poisson arrivals from
//!    [`genio::OpenLoopGen`] at several fractions of `C`, including a
//!    point past saturation, so the latency distribution shows the
//!    queueing knee and the overload point shows backpressure engaging
//!    (rejections > 0) instead of unbounded queue growth.
//!
//! The request stream is a 75/25 mix of two read lengths drawn from the
//! same genome the spectrum was built on (one snapshot serves both),
//! which is what a correction service sees: one reference spectrum,
//! heterogeneous incoming read batches. `figures -- bench-json` renders
//! the result as `BENCH_serve.json`; `figures -- serve-floor` gates CI
//! on the recorded floors.

use dnaseq::Read;
use genio::dataset::DatasetProfile;
use genio::{MixComponent, OpenLoopGen, RequestMix};
use reptile::{LocalSpectra, ReptileParams};
use reptile_dist::snapshot::save_snapshot_serial;
use reptile_dist::{
    try_run_distributed, EngineConfig, HeuristicConfig, ServeConfig, ServeEngine, ServeResponse,
    SubmitError,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Rank count for every serve measurement (large enough that most
/// lookups are remote, small enough that worker threads do not thrash a
/// CI box).
pub const NP: usize = 4;

/// Deterministic seed for the serve workload (genome + schedules).
pub const SEED: u64 = 0x5EED_5E12;

/// One offered-load point of the open-loop sweep.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered load as a fraction of the calibrated capacity.
    pub fraction: f64,
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Requests the generator submitted (accepted + rejected).
    pub submitted: u64,
    /// Requests admitted and corrected.
    pub completed: u64,
    /// Submissions rejected with backpressure (open-loop: dropped).
    pub rejected: u64,
    /// Sustained completion rate, requests/second.
    pub achieved_rps: f64,
    /// Mean micro-batch size at this load (adaptive batching outcome).
    pub mean_batch: f64,
    /// Queue+service latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
    /// Largest admission-queue depth the generator observed.
    pub max_queue: usize,
}

/// The full benchmark result, rendered by [`render_json`].
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Ranks in the service.
    pub np: usize,
    /// Reads the spectrum was built from.
    pub spectrum_reads: usize,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Jobs in the batch-loop baseline (and the closed-loop replay).
    pub jobs: usize,
    /// Reads per job.
    pub job_reads: usize,
    /// Wall time of the per-job batch loop, seconds.
    pub batch_secs: f64,
    /// Wall time of the same jobs through the persistent engine.
    pub serve_secs: f64,
    /// Calibrated capacity: requests/second sustained by a saturating
    /// closed-loop burst (the sweep's fractions are relative to this).
    pub capacity_rps: f64,
    /// serve vs batch-loop speedup on identical jobs.
    pub speedup: f64,
    /// The open-loop sweep, ascending offered load.
    pub points: Vec<LoadPoint>,
    /// Total requests submitted across the whole benchmark.
    pub total_requests: u64,
}

impl ServeBenchReport {
    /// The point nearest the middle of the sweep (used for the CI p99
    /// ceiling — below saturation, so the number is a service-time
    /// statement, not a queue-depth one).
    pub fn mid_point(&self) -> &LoadPoint {
        &self.points[self.points.len() / 2]
    }

    /// Rejections at the highest offered load (the backpressure-engages
    /// assertion: past saturation an open-loop source must see drops).
    pub fn overload_rejected(&self) -> u64 {
        self.points.last().map(|p| p.rejected).unwrap_or(0)
    }
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 4,
        tile_threshold: 3,
        ..ReptileParams::for_tests()
    }
}

/// The service's reference spectrum: deep 60 bp coverage of the genome.
fn spectrum_profile(n_reads: usize, genome_len: usize) -> DatasetProfile {
    DatasetProfile {
        name: "serve-spectrum".into(),
        genome_len,
        read_len: 60,
        n_reads,
        base_error_rate: 0.003,
        hotspot_count: 2,
        hotspot_multiplier: 4.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
}

/// A request pool over the *same genome* (same seed + genome length →
/// identical genome draw) with its own read length and error rate.
fn request_pool(n_reads: usize, genome_len: usize, read_len: usize, err: f64) -> Vec<Read> {
    DatasetProfile { read_len, n_reads, base_error_rate: err, ..spectrum_profile(0, genome_len) }
        .generate(SEED)
        .reads
}

/// The serve request mix: 75% short reads at the spectrum's error rate,
/// 25% longer reads at a higher one.
fn request_mix(genome_len: usize, pool_reads: usize) -> RequestMix {
    RequestMix::new(vec![
        MixComponent { weight: 3.0, reads: request_pool(pool_reads, genome_len, 60, 0.003) },
        MixComponent { weight: 1.0, reads: request_pool(pool_reads / 2, genome_len, 100, 0.008) },
    ])
}

fn scratch_dir() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "reptile-serve-bench-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn engine_config(snapshot: &std::path::Path) -> EngineConfig {
    // The service operating point: tiles (the hot, neighbour-exploded
    // spectrum) replicated at startup — memory for throughput, paid
    // once by the persistent engine but per *job* by the batch loop —
    // while k-mer lookups stay owner-sharded and ride the aggregated
    // (micro-batched) Step IV round trips.
    let h = HeuristicConfig {
        aggregate_lookups: true,
        replicate_tiles: true,
        ..HeuristicConfig::base()
    };
    EngineConfig::builder(NP, params())
        .heuristics(h)
        .load_spectrum(snapshot)
        .build()
        .expect("serve bench engine config")
}

/// Draw `jobs × job_reads` requests from the mix and re-id them so every
/// read in a job is unique (batch mode dedups output by id).
fn draw_jobs(mix: &RequestMix, jobs: usize, job_reads: usize) -> Vec<Vec<Read>> {
    let mut gen = OpenLoopGen::new(mix.clone(), 1.0, SEED ^ 0x10B5);
    (0..jobs)
        .map(|_| {
            gen.generate(job_reads)
                .into_iter()
                .enumerate()
                .map(|(i, a)| Read { id: i as u64 + 1, ..a.read })
                .collect()
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Submit every read of `job` (retrying on backpressure), drain until
/// all of them complete, and return the responses sorted by read id.
fn serve_one_job(engine: &ServeEngine, job: &[Read]) -> Vec<ServeResponse> {
    let n = job.len();
    let mut responses: Vec<ServeResponse> = Vec::with_capacity(n);
    for read in job {
        let mut pending = read.clone();
        loop {
            match engine.submit(pending.id, pending) {
                Ok(()) => break,
                Err(SubmitError::Backpressure { read, retry_after, .. }) => {
                    responses.append(&mut engine.drain());
                    std::thread::sleep(retry_after);
                    pending = read;
                }
                Err(SubmitError::Closed(_)) => panic!("serve engine closed mid-benchmark"),
            }
        }
    }
    while responses.len() < n {
        responses.append(&mut engine.drain());
        if responses.len() < n {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    responses.sort_unstable_by_key(|r| r.read.id);
    responses
}

/// One open-loop point: submit `n` Poisson arrivals at `rate` req/s
/// (bursts are released on schedule, never paced per request), dropping
/// rejected submissions the way an open-loop source does, and collect
/// latency for every completion.
fn open_loop_point(
    engine: &ServeEngine,
    mix: &RequestMix,
    rate: f64,
    fraction: f64,
    n: u64,
    seed: u64,
) -> LoadPoint {
    let mut gen = OpenLoopGen::new(mix.clone(), rate, seed);
    let mut responses: Vec<ServeResponse> = Vec::with_capacity(n as usize);
    let mut rejected = 0u64;
    let mut accepted = 0u64;
    let mut max_queue = 0usize;
    let start = Instant::now();
    let mut next = gen.next_arrival();
    let mut submitted = 0u64;
    while submitted < n {
        let now = start.elapsed().as_secs_f64();
        // release everything the schedule says has arrived by `now`
        while submitted < n && next.at_secs <= now {
            submitted += 1;
            let read = Read { id: submitted, ..next.read.clone() };
            match engine.submit(next.trace_id, read) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Backpressure { queue_len, .. }) => {
                    // open-loop: the request is lost, the source does
                    // not slow down
                    rejected += 1;
                    max_queue = max_queue.max(queue_len);
                }
                Err(SubmitError::Closed(_)) => panic!("serve engine closed mid-benchmark"),
            }
            next = gen.next_arrival();
        }
        max_queue = max_queue.max(engine.queue_len());
        responses.append(&mut engine.drain());
        let wait = (next.at_secs - start.elapsed().as_secs_f64()).max(0.0);
        if wait > 100e-6 {
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.001)));
        }
    }
    while responses.len() < accepted as usize {
        responses.append(&mut engine.drain());
        if responses.len() < accepted as usize {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    let mut lat_ms: Vec<f64> =
        responses.iter().map(|r| (r.queue + r.service).as_secs_f64() * 1e3).collect();
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let batches: u64 = {
        // mean batch over this point's responses (each response carries
        // the size of the batch it rode in)
        let sum: u64 = responses.iter().map(|r| r.batch_len as u64).sum();
        if responses.is_empty() {
            0
        } else {
            sum / responses.len() as u64
        }
    };
    LoadPoint {
        fraction,
        offered_rps: rate,
        submitted,
        completed: responses.len() as u64,
        rejected,
        achieved_rps: responses.len() as f64 / elapsed.max(1e-9),
        mean_batch: batches as f64,
        p50_ms: percentile(&lat_ms, 50.0),
        p95_ms: percentile(&lat_ms, 95.0),
        p99_ms: percentile(&lat_ms, 99.0),
        p999_ms: percentile(&lat_ms, 99.9),
        max_queue,
    }
}

/// Run the full benchmark.
///
/// `open_loop_requests` is the total submissions across the sweep
/// (`bench-json` uses ≥ 1M; the in-crate test a few thousand); `jobs ×
/// job_reads` sizes the batch-loop comparison.
pub fn run(open_loop_requests: u64, jobs: usize, job_reads: usize) -> ServeBenchReport {
    // A serve deployment fronts a *large* reference spectrum (the
    // paper's datasets run 0.9–158 GB); the per-job batch loop pays the
    // snapshot load for every job, the persistent engine once.
    let spectrum_reads = 80_000;
    let genome_len = 250_000;
    let p = params();

    // --- one spectrum, persisted once ---
    let spectrum = spectrum_profile(spectrum_reads, genome_len).generate(SEED).reads;
    let built = LocalSpectra::build(&spectrum, &p);
    let dir = scratch_dir();
    let per_rank =
        save_snapshot_serial(&dir, &p, NP, 0, &built.kmers, &built.tiles).expect("save snapshot");
    let snapshot_bytes: u64 = per_rank.iter().sum();
    let cfg = engine_config(&dir);
    let mix = request_mix(genome_len, 3_000);
    let job_sets = draw_jobs(&mix, jobs, job_reads);

    // --- baseline: the per-job batch loop (snapshot reloaded per job) ---
    let t = Instant::now();
    let batch_outputs: Vec<Vec<Read>> = job_sets
        .iter()
        .map(|job| try_run_distributed(&cfg, job).expect("batch-loop job").corrected)
        .collect();
    let batch_secs = t.elapsed().as_secs_f64();

    // --- persistent engine: same jobs, closed loop ---
    // Queue depth scales with the request budget so the overload point
    // fills the queue well within its run at any benchmark size.
    let queue_depth = (open_loop_requests / 32).clamp(256, 2_048) as usize;
    let engine =
        ServeEngine::start(cfg.clone(), ServeConfig { queue_depth, max_batch: 512 }, Vec::new())
            .expect("serve engine start");
    let t = Instant::now();
    let mut serve_outputs: Vec<Vec<Read>> = Vec::with_capacity(jobs);
    for job in &job_sets {
        serve_outputs.push(serve_one_job(&engine, job).into_iter().map(|r| r.read).collect());
    }
    let serve_secs = t.elapsed().as_secs_f64();
    for (batch, serve) in batch_outputs.iter().zip(&serve_outputs) {
        assert_eq!(batch, serve, "serve output must be bit-identical to batch mode");
    }
    let total_jobs_requests = (jobs * job_reads) as u64;
    let speedup = batch_secs / serve_secs.max(1e-9);

    // --- saturation burst: calibrate the true capacity for the sweep.
    // Job replay serializes at job boundaries (submit, drain, next), so
    // its rate underestimates what a continuously-fed queue sustains;
    // the sweep fractions must be relative to the latter or the
    // "overload" point would not actually overload.
    let burst_n = (open_loop_requests / 4).clamp(2_000, 40_000) as usize;
    let burst: Vec<Read> = OpenLoopGen::new(mix.clone(), 1.0, SEED ^ 0xCA11)
        .generate(burst_n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| Read { id: i as u64 + 1, ..a.read })
        .collect();
    let t = Instant::now();
    let served = serve_one_job(&engine, &burst);
    let burst_secs = t.elapsed().as_secs_f64();
    assert_eq!(served.len(), burst_n);
    let capacity_rps = burst_n as f64 / burst_secs.max(1e-9);

    // --- open-loop sweep on the same warm engine ---
    // Below-saturation points run in ≈ n/rate wall seconds, so the
    // overload point carries the bulk of the request budget.
    let fractions = [0.5, 0.8, 1.5];
    let shares = [0.2, 0.3, 0.5];
    let mut points = Vec::new();
    for (i, (&f, &share)) in fractions.iter().zip(&shares).enumerate() {
        let n = ((open_loop_requests as f64) * share).ceil() as u64;
        points.push(open_loop_point(&engine, &mix, f * capacity_rps, f, n, SEED + i as u64));
    }
    let report = engine.shutdown().expect("serve engine shutdown");
    assert_eq!(report.lookups.keys_degraded, 0, "no faults injected, nothing may degrade");
    let _ = std::fs::remove_dir_all(&dir);

    let total_requests =
        total_jobs_requests + burst_n as u64 + points.iter().map(|p| p.submitted).sum::<u64>();
    ServeBenchReport {
        np: NP,
        spectrum_reads,
        snapshot_bytes,
        jobs,
        job_reads,
        batch_secs,
        serve_secs,
        capacity_rps,
        speedup,
        points,
        total_requests,
    }
}

/// Render the `BENCH_serve.json` snapshot.
pub fn render_json(r: &ServeBenchReport) -> String {
    let mut points = String::new();
    for (i, p) in r.points.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{\"fraction\": {:.2}, \"offered_rps\": {:.0}, \"submitted\": {}, \
             \"completed\": {}, \"rejected\": {}, \"achieved_rps\": {:.0}, \
             \"mean_batch\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_queue\": {}}}",
            p.fraction,
            p.offered_rps,
            p.submitted,
            p.completed,
            p.rejected,
            p.achieved_rps,
            p.mean_batch,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.p999_ms,
            p.max_queue,
        ));
    }
    let mid = r.mid_point();
    format!(
        "{{\n  \"workload\": {{\"np\": {}, \"spectrum_reads\": {}, \"snapshot_bytes\": {}, \
         \"jobs\": {}, \"job_reads\": {}}},\n  \
         \"closed_loop\": {{\"batch_secs\": {:.3}, \"serve_secs\": {:.3}, \
         \"capacity_rps\": {:.0}, \"speedup_vs_batch\": {:.3}}},\n  \
         \"open_loop\": [\n{}\n  ],\n  \
         \"floors\": {{\"requests_total\": {}, \"mid_p99_ms\": {:.3}, \
         \"overload_rejected\": {}}}\n}}\n",
        r.np,
        r.spectrum_reads,
        r.snapshot_bytes,
        r.jobs,
        r.job_reads,
        r.batch_secs,
        r.serve_secs,
        r.capacity_rps,
        r.speedup,
        points,
        r.total_requests,
        mid.p99_ms,
        r.overload_rejected(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance shape on a small budget: the persistent engine
    /// beats the per-job batch loop, the overload point engages
    /// backpressure, and latency percentiles are ordered. Wait-heavy
    /// (spawns real rank threads and paces a Poisson schedule), so it
    /// only runs in release.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "wait-heavy serve benchmark: run with --release")]
    fn serve_beats_batch_loop_and_backpressure_engages() {
        let r = run(9_000, 6, 150);
        eprintln!("serve bench:\n{}", render_json(&r));
        assert!(
            r.speedup > 1.0,
            "persistent serve ({:.3}s) must beat the per-job batch loop ({:.3}s)",
            r.serve_secs,
            r.batch_secs
        );
        assert!(r.capacity_rps > 0.0);
        assert_eq!(r.points.len(), 3);
        for p in &r.points {
            assert!(p.completed > 0);
            assert!(p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms && p.p99_ms <= p.p999_ms);
        }
        assert!(
            r.overload_rejected() > 0,
            "1.5x capacity must trip backpressure (rejected = {})",
            r.overload_rejected()
        );
        assert!(r.total_requests >= 9_000);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "wait-heavy serve benchmark: run with --release")]
    fn json_snapshot_is_well_formed() {
        let r = run(3_000, 3, 200);
        let json = render_json(&r);
        for key in
            ["speedup_vs_batch", "capacity_rps", "p999_ms", "requests_total", "overload_rejected"]
        {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
