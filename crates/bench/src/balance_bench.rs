//! Static vs adaptive load balancing on skewed and uniform workloads.
//!
//! The adaptive layer (hot-shard replication + read-chunk stealing,
//! `HeuristicConfig::adaptive`) earns its place only if it (a) wins big
//! on the skew it was built for and (b) costs nothing when the workload
//! is already balanced. This bench races the two policies on the
//! [`balance_pair`] workloads — the same profile generated with and
//! without a repeat run — on the virtual engine (deterministic modeled
//! time) with the commodity-cluster cost model: the environment where
//! remote lookups are dearest and skew hurts most.
//!
//! `render_json` emits `BENCH_balance.json`; CI's `balance-floor` step
//! asserts the two floors:
//!
//! * **skewed**: adaptive ≥ 1.5× faster than static;
//! * **uniform**: adaptive within ±5% of static (both the hot-shard gate
//!   and the steal gate must hold closed, so the adaptive run executes
//!   exactly the static protocol plus one bounded histogram sample and
//!   one tiny allgather).
//!
//! [`balance_pair`]: crate::workloads::balance_pair

use crate::workloads::{balance_pair, smoke_params};
use mpisim::CostModel;
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::{EngineConfig, HeuristicConfig, RunOutput};

/// Rank count for both races. Small enough that the smoke workloads keep
/// hundreds of reads per rank, large enough that a hot owner's fair
/// share (1/NP) leaves room above the 1.5× skew gate.
pub const NP: usize = 8;
/// Hot-shard budget for the adaptive runs.
pub const HOT_K: usize = 2;

/// One policy × workload cell of the race.
#[derive(Clone, Copy, Debug)]
pub struct BalanceCell {
    /// Modeled end-to-end makespan, seconds.
    pub makespan_secs: f64,
    /// Remote lookups summed over ranks (messages the policy must pay).
    pub remote_lookups: u64,
    /// Lookups served by a hot-shard replica.
    pub hot_shard_hits: u64,
    /// Read chunks moved by the steal protocol.
    pub chunks_stolen: u64,
    /// `(max − min) / mean` of per-rank correction time.
    pub straggler_spread: f64,
}

/// The full static-vs-adaptive race result, rendered by [`render_json`].
#[derive(Clone, Copy, Debug)]
pub struct BalanceBenchReport {
    /// Reads in each workload.
    pub reads: usize,
    /// Static policy (paper baseline: hash shuffle only) on skew.
    pub skewed_static: BalanceCell,
    /// Adaptive policy on skew.
    pub skewed_adaptive: BalanceCell,
    /// Static policy on the uniform control.
    pub uniform_static: BalanceCell,
    /// Adaptive policy on the uniform control.
    pub uniform_adaptive: BalanceCell,
}

impl BalanceBenchReport {
    /// How many times faster the adaptive policy is on the skewed
    /// workload (the headline floor: ≥ 1.5).
    pub fn skewed_speedup(&self) -> f64 {
        self.skewed_static.makespan_secs / self.skewed_adaptive.makespan_secs.max(f64::MIN_POSITIVE)
    }

    /// Adaptive-over-static makespan ratio on the uniform control
    /// (the no-regression floor: within ±5% of 1.0).
    pub fn uniform_ratio(&self) -> f64 {
        self.uniform_adaptive.makespan_secs
            / self.uniform_static.makespan_secs.max(f64::MIN_POSITIVE)
    }

    /// Fraction of the static policy's remote lookups the adaptive
    /// policy eliminated on the skewed workload.
    pub fn remote_reduction(&self) -> f64 {
        let s = self.skewed_static.remote_lookups;
        if s == 0 {
            return 0.0;
        }
        1.0 - self.skewed_adaptive.remote_lookups as f64 / s as f64
    }
}

fn cell(out: &RunOutput) -> BalanceCell {
    BalanceCell {
        makespan_secs: out.report.makespan_secs(),
        remote_lookups: out.report.remote_lookups(),
        hot_shard_hits: out.report.hot_shard_hits(),
        chunks_stolen: out.report.chunks_stolen(),
        straggler_spread: out.report.straggler_spread(),
    }
}

fn race(
    reads: &[dnaseq::Read],
) -> (BalanceCell, BalanceCell, Vec<dnaseq::Read>, Vec<dnaseq::Read>) {
    let cfg = |heur: HeuristicConfig| EngineConfig {
        heuristics: heur,
        cost: CostModel::commodity_cluster(),
        chunk_size: 32,
        ..EngineConfig::virtual_cluster(NP, smoke_params())
    };
    let stat = run_virtual(&cfg(HeuristicConfig::default()), reads);
    let adap = run_virtual(&cfg(HeuristicConfig::adaptive(HOT_K)), reads);
    (cell(&stat), cell(&adap), stat.corrected, adap.corrected)
}

/// Run the four-cell race. Panics if either policy changes the corrected
/// output — speed from wrong answers doesn't count.
pub fn run() -> BalanceBenchReport {
    let (uni, skew) = balance_pair();
    let (skewed_static, skewed_adaptive, s_out, s_out2) = race(&skew.reads);
    assert_eq!(s_out, s_out2, "adaptive balancing must be output-invariant (skewed)");
    let (uniform_static, uniform_adaptive, u_out, u_out2) = race(&uni.reads);
    assert_eq!(u_out, u_out2, "adaptive balancing must be output-invariant (uniform)");
    BalanceBenchReport {
        reads: skew.reads.len(),
        skewed_static,
        skewed_adaptive,
        uniform_static,
        uniform_adaptive,
    }
}

/// Render the `BENCH_balance.json` snapshot.
pub fn render_json(r: &BalanceBenchReport) -> String {
    let cell = |c: &BalanceCell| {
        format!(
            "{{\"makespan_secs\": {:.6}, \"remote_lookups\": {}, \"hot_shard_hits\": {}, \
             \"chunks_stolen\": {}, \"straggler_spread\": {:.4}}}",
            c.makespan_secs,
            c.remote_lookups,
            c.hot_shard_hits,
            c.chunks_stolen,
            c.straggler_spread
        )
    };
    format!(
        "{{\n  \"workload\": {{\"reads\": {}, \"np\": {}, \"hot_k\": {}}},\n  \
         \"skewed\": {{\"static\": {}, \"adaptive\": {}}},\n  \
         \"uniform\": {{\"static\": {}, \"adaptive\": {}}},\n  \
         \"ratios\": {{\"skewed_speedup\": {:.3}, \"uniform_ratio\": {:.3}, \
         \"remote_reduction\": {:.3}}}\n}}\n",
        r.reads,
        NP,
        HOT_K,
        cell(&r.skewed_static),
        cell(&r.skewed_adaptive),
        cell(&r.uniform_static),
        cell(&r.uniform_adaptive),
        r.skewed_speedup(),
        r.uniform_ratio(),
        r.remote_reduction()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI floors, enforced at the source as well: the adaptive layer
    /// must win ≥1.5× on the skew it exists for, stay within ±5% on a
    /// balanced workload, and actually remove remote traffic (not just
    /// shuffle modeled time around).
    #[test]
    fn adaptive_beats_static_on_skew_and_ties_on_uniform() {
        let r = run();
        assert!(
            r.skewed_speedup() >= 1.5,
            "adaptive speedup on skew {:.3}x below the 1.5x floor\n{}",
            r.skewed_speedup(),
            render_json(&r)
        );
        assert!(
            (0.95..=1.05).contains(&r.uniform_ratio()),
            "adaptive makespan on uniform drifted {:.3}x from static\n{}",
            r.uniform_ratio(),
            render_json(&r)
        );
        assert!(
            r.remote_reduction() > 0.0,
            "hot-shard replication removed no remote lookups\n{}",
            render_json(&r)
        );
        // the mechanisms must both engage on the skewed workload…
        assert!(r.skewed_adaptive.hot_shard_hits > 0, "hot shards never hit");
        assert!(r.skewed_adaptive.chunks_stolen > 0, "no chunks stolen");
        // …and the gates must hold both of them closed on the uniform one
        assert_eq!(r.uniform_adaptive.hot_shard_hits, 0, "uniform workload tripped the hot gate");
        assert_eq!(r.uniform_adaptive.chunks_stolen, 0, "uniform workload tripped the steal gate");
        // stealing must level the stragglers, not merely shift them
        assert!(r.skewed_adaptive.straggler_spread < r.skewed_static.straggler_spread);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = run();
        let json = render_json(&r);
        assert!(json.contains("\"skewed_speedup\""));
        assert!(json.contains("\"uniform_ratio\""));
        assert!(json.contains("\"remote_reduction\""));
        assert!(json.contains("\"chunks_stolen\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
