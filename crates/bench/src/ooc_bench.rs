//! Out-of-core build bench: the bounded-memory spill/merge build vs the
//! in-memory build on the same workload, rendered to `BENCH_ooc.json`
//! (`figures -- bench-json`) and gated in CI by `figures -- ooc-floor`.
//!
//! Two claims feed the snapshot:
//!
//! 1. **the budget holds** — with `memory_budget` pinned at the geometry
//!    floor (far below the in-memory working set), the build really
//!    spills (run files hit disk) and the measured peak *accounted*
//!    bytes — count tables + accumulator entries + spill staging
//!    buffers — stay at or under the budget. Deterministic, asserted in
//!    CI unconditionally.
//! 2. **the price is bounded** — the spilled build's construct time
//!    stays within 2.5x of the in-memory build on this workload. A
//!    wall-clock claim, so the floor is enforced by `ooc-floor` on
//!    release builds only.
//!
//! Output identity (corrected reads byte-for-byte equal) is re-checked
//! here too, on the bench workload — the proptest matrix in
//! `reptile-dist/tests/ooc_build.rs` owns the exhaustive version.

use crate::build_bench::build_workload;
use crate::workloads::smoke_params;
use reptile_dist::engine_mt::run_distributed;
use reptile_dist::{ooc, EngineConfig, HeuristicConfig};

/// Ranks the bench runs at — small enough for CI, parallel enough that
/// the per-owner run files and the merge both exercise real fan-in.
const NP: usize = 3;

/// The comparison result, rendered by [`render_json`].
#[derive(Clone, Copy, Debug)]
pub struct OocBenchReport {
    /// Reads in the workload.
    pub reads: usize,
    /// The memory budget the out-of-core build ran under (the geometry
    /// floor for the bench parameters).
    pub budget_bytes: u64,
    /// Measured peak accounted bytes (tables + accumulator entries +
    /// spill buffers), max over ranks.
    pub peak_accounted_bytes: u64,
    /// In-memory (unbudgeted) build construct seconds, max over ranks.
    pub inmem_build_secs: f64,
    /// Out-of-core build construct seconds, max over ranks.
    pub ooc_build_secs: f64,
    /// Run files written across all ranks.
    pub spill_runs: u64,
    /// Bytes spilled across all ranks.
    pub spill_bytes: u64,
    /// Merge seconds, max over ranks.
    pub merge_secs: f64,
    /// Whether the budgeted build's corrected output was byte-identical
    /// to the unbudgeted build's.
    pub output_identical: bool,
}

impl OocBenchReport {
    /// Out-of-core construct time as a multiple of the in-memory build.
    pub fn slowdown(&self) -> f64 {
        self.ooc_build_secs / self.inmem_build_secs.max(1e-12)
    }
}

/// Run the comparison on `n_reads` reads (the `bench-json` subcommand
/// uses 20_000).
pub fn run(n_reads: usize) -> OocBenchReport {
    let params = smoke_params();
    let reads = build_workload(n_reads, 60, 3);
    let heur = HeuristicConfig { batch_reads: true, ..HeuristicConfig::default() };
    let cfg = |budget: Option<u64>| {
        let mut b =
            EngineConfig::builder(NP, params).chunk_size(2000).heuristics(heur).build_threads(2);
        if let Some(bytes) = budget {
            b = b.memory_budget(bytes);
        }
        b.build().expect("valid bench config")
    };

    let baseline = run_distributed(&cfg(None), &reads);
    let budget = ooc::min_budget(&params);
    let out = run_distributed(&cfg(Some(budget)), &reads);

    OocBenchReport {
        reads: n_reads,
        budget_bytes: budget,
        peak_accounted_bytes: out.report.ooc_peak_bytes(),
        inmem_build_secs: baseline.report.construct_secs(),
        ooc_build_secs: out.report.construct_secs(),
        spill_runs: out.report.spill_runs(),
        spill_bytes: out.report.spill_bytes(),
        merge_secs: out.report.merge_secs(),
        output_identical: out.corrected == baseline.corrected,
    }
}

/// Render the `BENCH_ooc.json` snapshot. `output_identical` is encoded
/// as 1/0 so the `ooc-floor` gate's number scraper can read it.
pub fn render_json(r: &OocBenchReport) -> String {
    format!(
        "{{\n  \"workload\": {{\"reads\": {}, \"np\": {NP}}},\n  \
         \"budget_bytes\": {},\n  \"peak_accounted_bytes\": {},\n  \
         \"inmem_build_secs\": {:.4},\n  \"ooc_build_secs\": {:.4},\n  \
         \"ooc_slowdown\": {:.3},\n  \
         \"spill\": {{\"runs\": {}, \"bytes\": {}, \"merge_secs\": {:.4}}},\n  \
         \"output_identical\": {}\n}}\n",
        r.reads,
        r.budget_bytes,
        r.peak_accounted_bytes,
        r.inmem_build_secs,
        r.ooc_build_secs,
        r.slowdown(),
        r.spill_runs,
        r.spill_bytes,
        r.merge_secs,
        u8::from(r.output_identical),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deterministic acceptance criteria: at the floor budget the
    /// build spills for real, the accounted peak honors the budget, and
    /// the output is byte-identical to the in-memory build. The time
    /// ratio is reported in the JSON, not asserted — `ooc-floor` gates
    /// it on release builds, same policy as `build_bench`.
    #[test]
    fn floor_budget_spills_under_budget_with_identical_output() {
        let r = run(1_500);
        assert!(r.spill_runs > 0, "floor budget must force a spill");
        assert!(r.spill_bytes > 0);
        assert!(
            r.peak_accounted_bytes <= r.budget_bytes,
            "peak {} over budget {}",
            r.peak_accounted_bytes,
            r.budget_bytes
        );
        assert!(r.output_identical, "ooc output diverged from the in-memory build");
        assert!(r.merge_secs >= 0.0);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = run(600);
        let json = render_json(&r);
        assert!(json.contains("\"budget_bytes\""));
        assert!(json.contains("\"peak_accounted_bytes\""));
        assert!(json.contains("\"ooc_slowdown\""));
        assert!(json.contains("\"output_identical\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
