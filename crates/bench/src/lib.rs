//! Benchmark harness: workloads and figure regeneration.
//!
//! The [`workloads`] module pins the scaled dataset profiles and
//! parameters every figure uses; [`figures`] regenerates each table and
//! figure of the paper (run `cargo run -p reptile-bench --release --bin
//! figures -- all`). Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance_bench;
pub mod build_bench;
pub mod figures;
pub mod ooc_bench;
pub mod serve_bench;
pub mod snapshot_bench;
pub mod spectrum_bench;
pub mod workloads;
