//! Spectrum-construction race: the serial reference builder vs the
//! pipelined fused-scan builder, measured at the phase's real operating
//! point and rendered to a `BENCH_build.json` snapshot
//! (`figures -- bench-json`) tracked as a CI artifact next to
//! `BENCH_spectrum.json`.
//!
//! Two claims feed the snapshot:
//!
//! 1. **single-rank build throughput** — the fused scan (one rolling
//!    pass deriving each tile from its two k-mer codes) plus
//!    width-adaptive counting aggregation and a survivors-only bulk
//!    table load replace the serial path's per-occurrence hash insert
//!    and build-then-prune rebuild; keys/sec for the serial builder and
//!    the pipelined builder at 1 and 4 extraction workers. The measured
//!    4-worker speedup is a **CI floor** (release builds): ≥ 3× over
//!    the serial reference on this workload, single-thread efficiency
//!    alone — no core-count excuse.
//! 2. **exchanged bytes** — with pre-aggregation only *distinct*
//!    `(key, count)` pairs cross the wire. The reduction vs shipping raw
//!    occurrences is deterministic (a property of the workload, not the
//!    clock), so it is asserted in CI unconditionally.

use crate::workloads::{smoke_params, SEED};
use dnaseq::{mix64, Read};
use mpisim::Universe;
use reptile::ReptileParams;
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::spectrum::{build_distributed, build_distributed_serial, BuildStats};
use reptile_dist::EngineConfig;
use reptile_dist::HeuristicConfig;
use std::time::Instant;

/// One builder's measurements at a fixed workload.
#[derive(Clone, Copy, Debug)]
pub struct BuildNumbers {
    /// Wall ns per extracted key occurrence (k-mers + tiles).
    pub ns_per_key: f64,
    /// Extracted key occurrences per second.
    pub keys_per_sec: f64,
}

/// The race result, rendered by [`render_json`].
#[derive(Clone, Copy, Debug)]
pub struct BuildBenchReport {
    /// Reads in the workload.
    pub reads: usize,
    /// K-mer + tile occurrences one build extracts.
    pub key_occurrences: u64,
    /// Serial reference builder, single rank.
    pub serial: BuildNumbers,
    /// Pipelined builder, 1 extraction worker, single rank.
    pub pipelined_1t: BuildNumbers,
    /// Pipelined builder, 4 extraction workers, single rank.
    pub pipelined_4t: BuildNumbers,
    /// Raw bytes an unaggregated exchange would ship (every off-rank
    /// occurrence at wire-tuple width), np=4 batch mode, all ranks.
    pub exchange_occurrence_bytes: u64,
    /// Bytes the pre-aggregated exchange actually ships.
    pub exchange_shipped_bytes: u64,
    /// Single-rank 4-worker speedup under the virtual engine's cost
    /// model (deterministic — what 4 real cores deliver; the measured
    /// ratio above is bounded by the host's core count).
    pub modeled_speedup_4t: f64,
    /// Modeled fraction of build wall-time hidden by the
    /// double-buffered exchange at np=4 batch mode.
    pub modeled_overlap_fraction: f64,
}

impl BuildBenchReport {
    /// Single-rank throughput gain of the 4-worker pipelined build over
    /// the serial reference.
    pub fn speedup_4t(&self) -> f64 {
        self.serial.ns_per_key / self.pipelined_4t.ns_per_key
    }

    /// How many times fewer bytes cross the wire thanks to the sort +
    /// run-length pre-aggregation (deterministic).
    pub fn exchange_reduction(&self) -> f64 {
        self.exchange_occurrence_bytes as f64 / self.exchange_shipped_bytes.max(1) as f64
    }
}

/// Deterministic spectrum-build workload: groups of `dup` copies of
/// distinct random templates — the duplicate profile that makes counts
/// survive pruning and gives pre-aggregation something to merge.
pub fn build_workload(n_reads: usize, read_len: usize, dup: usize) -> Vec<Read> {
    let mut reads = Vec::with_capacity(n_reads);
    for i in 0..n_reads {
        let template = i / dup.max(1);
        let seed = mix64(SEED ^ (template as u64 + 1));
        let seq: Vec<u8> = (0..read_len)
            .map(|j| [b'A', b'C', b'G', b'T'][(mix64(seed ^ (j as u64)) % 4) as usize])
            .collect();
        reads.push(Read::new(i as u64 + 1, seq, vec![30; read_len]));
    }
    reads
}

/// Best-of-`reps` wall time of `f`, in ns per `ops` operations.
fn time_ns_per_op<R>(reps: usize, ops: u64, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best / ops.max(1) as f64
}

fn single_rank_stats(
    reads: &[Read],
    chunk: usize,
    params: &ReptileParams,
    threads: Option<usize>,
) -> BuildStats {
    Universe::new(1).run(move |comm| {
        let heur = HeuristicConfig::base();
        match threads {
            None => build_distributed_serial(comm, reads, chunk, params, &heur).1,
            Some(t) => build_distributed(comm, reads, chunk, params, &heur, t).1,
        }
    })[0]
}

fn numbers(ns_per_key: f64) -> BuildNumbers {
    BuildNumbers { ns_per_key, keys_per_sec: 1e9 / ns_per_key.max(1e-9) }
}

/// Run the race on `n_reads` reads (the `bench-json` subcommand uses
/// 20_000; use ≥ 5_000 for stable numbers).
pub fn run(n_reads: usize) -> BuildBenchReport {
    let params = smoke_params();
    let reads = build_workload(n_reads, 60, 3);
    let chunk = 2000;

    // occurrence count is identical across builders (proptest-enforced);
    // measure once
    let probe = single_rank_stats(&reads, chunk, &params, Some(1));
    let key_occurrences = probe.kmers_extracted + probe.tiles_extracted;

    let reads_ref = &reads;
    let serial_ns =
        time_ns_per_op(3, key_occurrences, || single_rank_stats(reads_ref, chunk, &params, None));
    let piped1_ns = time_ns_per_op(3, key_occurrences, || {
        single_rank_stats(reads_ref, chunk, &params, Some(1))
    });
    let piped4_ns = time_ns_per_op(3, key_occurrences, || {
        single_rank_stats(reads_ref, chunk, &params, Some(4))
    });

    // --- exchange volume at np=4, batch mode (deterministic) ---
    // block partition: duplicate templates are adjacent, so keeping them
    // on one rank gives pre-aggregation real duplicates to merge (the
    // load balancer's hash(seq) placement has the same effect at scale)
    let np = 4;
    let stats: Vec<BuildStats> = Universe::new(np).run(move |comm| {
        let n = reads_ref.len();
        let (lo, hi) = (comm.rank() * n / np, (comm.rank() + 1) * n / np);
        let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
        build_distributed(comm, &reads_ref[lo..hi], 500, &params, &heur, 2).1
    });
    // an unaggregated exchange ships every occurrence at the same
    // wire-tuple width the aggregated one uses; approximate the k-mer /
    // tile occurrence split by the shipped-entry split (exact enough for
    // a lower bound: tiles are wider, and tiles dedup *more*)
    let mut occurrence_bytes = 0u64;
    let mut shipped_bytes = 0u64;
    for s in &stats {
        shipped_bytes += s.exchange_bytes;
        let per_entry = s.exchange_bytes as f64 / s.exchange_entries.max(1) as f64;
        occurrence_bytes += (s.exchange_occurrences as f64 * per_entry) as u64;
    }

    // --- modeled numbers (deterministic, core-count independent) ---
    let modeled_construct = |threads: usize| {
        let cfg =
            EngineConfig { build_threads: threads, ..EngineConfig::virtual_cluster(1, params) };
        run_virtual(&cfg, reads_ref).report.construct_secs()
    };
    let modeled_speedup_4t = modeled_construct(1) / modeled_construct(4).max(1e-12);
    let vcfg = EngineConfig {
        heuristics: HeuristicConfig { batch_reads: true, ..Default::default() },
        // ~4 batches per rank at any workload size: one round has nothing
        // to overlap with (the model degenerates to compute + comm)
        chunk_size: (n_reads / (np * 4)).max(1),
        build_threads: 2,
        ..EngineConfig::virtual_cluster(np, params)
    };
    let modeled_overlap_fraction = run_virtual(&vcfg, reads_ref).report.build_overlap_fraction();

    BuildBenchReport {
        reads: n_reads,
        key_occurrences,
        serial: numbers(serial_ns),
        pipelined_1t: numbers(piped1_ns),
        pipelined_4t: numbers(piped4_ns),
        exchange_occurrence_bytes: occurrence_bytes,
        exchange_shipped_bytes: shipped_bytes,
        modeled_speedup_4t,
        modeled_overlap_fraction,
    }
}

fn numbers_json(n: &BuildNumbers) -> String {
    format!("{{\"ns_per_key\": {:.2}, \"keys_per_sec\": {:.0}}}", n.ns_per_key, n.keys_per_sec)
}

/// Render the `BENCH_build.json` snapshot.
pub fn render_json(r: &BuildBenchReport) -> String {
    format!(
        "{{\n  \"workload\": {{\"reads\": {}, \"key_occurrences\": {}}},\n  \
         \"serial\": {},\n  \"pipelined_1t\": {},\n  \"pipelined_4t\": {},\n  \
         \"exchange\": {{\"occurrence_bytes\": {}, \"shipped_bytes\": {}, \
         \"reduction\": {:.2}}},\n  \
         \"ratios\": {{\"speedup_4t_measured\": {:.2}}},\n  \
         \"modeled\": {{\"speedup_4t\": {:.2}, \"overlap_fraction_np4\": {:.3}}}\n}}\n",
        r.reads,
        r.key_occurrences,
        numbers_json(&r.serial),
        numbers_json(&r.pipelined_1t),
        numbers_json(&r.pipelined_4t),
        r.exchange_occurrence_bytes,
        r.exchange_shipped_bytes,
        r.exchange_reduction(),
        r.speedup_4t(),
        r.modeled_speedup_4t,
        r.modeled_overlap_fraction
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deterministic acceptance criterion: pre-aggregation must ship
    /// strictly fewer bytes than the raw occurrence stream would (the
    /// workload has 3x duplicate templates, so there is real dedup to
    /// find). Latency ratios are reported in the JSON, not asserted —
    /// same policy as `spectrum_bench`.
    #[test]
    fn preaggregation_reduces_exchanged_bytes() {
        let r = run(1_200);
        assert!(r.key_occurrences > 0);
        assert!(r.exchange_shipped_bytes > 0, "np=4 build must exchange something");
        assert!(
            r.exchange_shipped_bytes < r.exchange_occurrence_bytes,
            "aggregated exchange must ship fewer bytes ({} vs {})",
            r.exchange_shipped_bytes,
            r.exchange_occurrence_bytes
        );
        assert!(r.exchange_reduction() > 1.0);
    }

    /// The modeled numbers stay in the snapshot (they project what real
    /// cores deliver) and stay sane — but they are no longer the
    /// headline assert; the measured floor below is.
    #[test]
    fn modeled_four_workers_at_least_double_throughput() {
        let r = run(1_200);
        assert!(
            r.modeled_speedup_4t >= 2.0,
            "modeled 4-worker speedup {} < 2x",
            r.modeled_speedup_4t
        );
        assert!(r.modeled_overlap_fraction > 0.0);
        assert!(r.modeled_overlap_fraction < 1.0);
    }

    /// The measured acceptance floor: the pipelined 4-worker build must
    /// beat the serial reference ≥ 3× on this host, wall-clock — the
    /// ratio the JSON snapshot reports as `speedup_4t_measured`. The
    /// gain comes from single-thread efficiency (adaptive counting, no
    /// per-occurrence hash probe, survivors-only bulk load), so a
    /// 1-core CI host can certify it. Release builds only: debug-build
    /// timings measure the compiler, not the code.
    #[cfg(not(debug_assertions))]
    #[test]
    fn measured_four_worker_speedup_at_least_3x() {
        let r = run(12_000);
        assert!(
            r.speedup_4t() >= 3.0,
            "measured 4-worker speedup {:.2} < 3x (serial {:.1} ns/key, pipelined {:.1} ns/key)",
            r.speedup_4t(),
            r.serial.ns_per_key,
            r.pipelined_4t.ns_per_key
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = run(600);
        let json = render_json(&r);
        assert!(json.contains("\"speedup_4t_measured\""));
        assert!(json.contains("\"modeled\""));
        assert!(json.contains("\"serial\""));
        assert!(json.contains("\"pipelined_4t\""));
        assert!(json.contains("\"reduction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn workload_is_deterministic() {
        let a = build_workload(50, 60, 3);
        let b = build_workload(50, 60, 3);
        assert_eq!(a, b);
        // duplicate groups share sequences
        assert_eq!(a[0].seq, a[1].seq);
        assert_ne!(a[0].seq, a[3].seq);
    }
}
