//! Storage-engine race: the flat open-addressing spectrum store vs the
//! `FxHashMap` it replaced, measured at the pipeline's real operating
//! point (insert-heavy construction, threshold prune, point lookups).
//!
//! Two numbers matter for the paper's memory story:
//!
//! 1. **bytes/entry after pruning** — `prune` on a hash map (`retain`)
//!    keeps the peak-size allocation, while the flat store rebuilds to
//!    the smallest power-of-two capacity that fits the survivors.
//!    Singletons (sequencing errors) are the majority of a real
//!    spectrum, so the post-prune state is where Fig 5's peak-memory
//!    rows live, and where the flat store wins by well over 2×;
//! 2. **point-lookup latency** — linear probing over packed parallel
//!    arrays must be no slower than the hash map on the hit/miss mix
//!    the corrector generates.
//!
//! `run()` measures both plus build/sweep throughput and renders a
//! `BENCH_spectrum.json` snapshot (`figures -- bench-json`) so the perf
//! trajectory is tracked in CI.

use dnaseq::{mix64, FxHashMap};
use reptile::FlatKmerTable;
use std::time::Instant;

/// Estimated heap bytes of a hashbrown-backed `HashMap` at `capacity()
/// == usable`: buckets are the next power of two holding `usable` at
/// 7/8 load, each bucket pays the entry payload plus one control byte.
/// Slightly conservative (the real table adds a few trailing control
/// bytes), which only understates the flat store's advantage.
pub fn fx_table_bytes(usable_capacity: usize, entry_bytes: usize) -> usize {
    let header = std::mem::size_of::<FxHashMap<u64, u32>>();
    if usable_capacity == 0 {
        return header;
    }
    let buckets = ((usable_capacity * 8).div_ceil(7)).next_power_of_two().max(4);
    header + buckets * (entry_bytes + 1)
}

/// One engine's measurements.
#[derive(Clone, Copy, Debug)]
pub struct EngineNumbers {
    /// Heap bytes per surviving entry after the threshold prune.
    pub bytes_per_entry_post_prune: f64,
    /// Construction: ns per inserted key occurrence.
    pub build_ns_per_key: f64,
    /// Bulk construction from pre-aggregated sorted distinct entries
    /// (the pipelined build's materialization path): ns per key. Flat:
    /// exact reserve + one probe-start-ordered bulk load; FxHashMap:
    /// pre-sized `with_capacity` + per-entry insert.
    pub bulk_ns_per_key: f64,
    /// Point lookup, key present, ns.
    pub lookup_hit_ns: f64,
    /// Point lookup, key absent, ns.
    pub lookup_miss_ns: f64,
    /// Full-table sweep (batch serving), ns per entry.
    pub sweep_ns_per_entry: f64,
}

/// The race result, rendered by [`render_json`].
#[derive(Clone, Copy, Debug)]
pub struct SpectrumBenchReport {
    /// Distinct keys inserted before pruning.
    pub inserted_keys: usize,
    /// Keys surviving `prune(2)` (the non-singletons).
    pub survivors: usize,
    /// Flat open-addressing store.
    pub flat: EngineNumbers,
    /// `FxHashMap` baseline.
    pub fxhash: EngineNumbers,
}

impl SpectrumBenchReport {
    /// How many times smaller the flat store is per surviving entry.
    pub fn bytes_per_entry_improvement(&self) -> f64 {
        self.fxhash.bytes_per_entry_post_prune / self.flat.bytes_per_entry_post_prune
    }
}

/// Deterministic spectrum-like workload: `n` distinct well-mixed keys,
/// one quarter of them repeated so they survive `prune(2)` — the
/// singleton-dominated profile of a real k-mer spectrum.
fn workload(n: usize) -> Vec<u64> {
    let mut keys = Vec::with_capacity(n + n / 4 * 2);
    for i in 0..n as u64 {
        // sentinel-adjacent keys are legal; keep them in the stream
        keys.push(mix64(i));
    }
    for i in (0..n as u64).step_by(4) {
        keys.push(mix64(i));
        keys.push(mix64(i));
    }
    keys
}

/// Absent-key probe stream (disjoint from [`workload`] by construction:
/// `mix64` is a bijection and the offset range does not overlap).
fn miss_probes(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| mix64(i + (1 << 40))).collect()
}

/// Best-of-`reps` wall time of `f`, in ns per `ops` operations.
fn time_ns_per_op<R>(reps: usize, ops: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best / ops.max(1) as f64
}

/// Run the race on `n` distinct keys (use ≥ 100_000 for stable numbers;
/// the `bench-json` subcommand uses 200_000).
pub fn run(n: usize) -> SpectrumBenchReport {
    let keys = workload(n);
    let misses = miss_probes(n.min(50_000));

    // --- build ---
    let flat_build_ns = time_ns_per_op(3, keys.len(), || {
        let mut t = FlatKmerTable::new();
        for &k in &keys {
            t.add_count(k, 1);
        }
        t.len()
    });
    let fx_build_ns = time_ns_per_op(3, keys.len(), || {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for &k in &keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m.len()
    });

    // --- bulk construction from sorted distinct entries (what the
    // pipelined spectrum build hands the table after aggregation) ---
    let mut entries: Vec<(u64, u32)> = {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut out: Vec<(u64, u32)> = Vec::new();
        for k in sorted {
            match out.last_mut() {
                Some(last) if last.0 == k => last.1 += 1,
                _ => out.push((k, 1)),
            }
        }
        out
    };
    entries.shrink_to_fit();
    let flat_bulk_ns = time_ns_per_op(3, entries.len(), || {
        let mut t = FlatKmerTable::new();
        t.reserve(entries.len());
        t.merge_sorted(&entries);
        t.len()
    });
    let fx_bulk_ns = time_ns_per_op(3, entries.len(), || {
        let mut m: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(entries.len(), Default::default());
        for &(k, c) in &entries {
            m.insert(k, c);
        }
        m.len()
    });

    // --- the post-prune operating point ---
    let mut flat = FlatKmerTable::new();
    let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
    for &k in &keys {
        flat.add_count(k, 1);
        *fx.entry(k).or_insert(0) += 1;
    }
    flat.prune(2);
    fx.retain(|_, c| *c >= 2);
    let survivors = flat.len();
    assert_eq!(survivors, fx.len());
    let flat_bytes = flat.memory_bytes() as f64 / survivors.max(1) as f64;
    let fx_bytes = fx_table_bytes(fx.capacity(), std::mem::size_of::<(u64, u32)>()) as f64
        / survivors.max(1) as f64;

    // --- point lookups on the pruned tables ---
    // probe in an order random wrt BOTH layouts (iterating a table in
    // its own slot order would hand that table sequential prefetch)
    let mut hits: Vec<u64> = flat.iter().map(|(k, _)| k).collect();
    hits.sort_unstable_by_key(|&k| mix64(k ^ 0x5bd1_e995));
    let flat_hit_ns = time_ns_per_op(5, hits.len(), || {
        hits.iter().map(|&k| flat.get(k).unwrap_or(0) as u64).sum::<u64>()
    });
    let fx_hit_ns = time_ns_per_op(5, hits.len(), || {
        hits.iter().map(|&k| fx.get(&k).copied().unwrap_or(0) as u64).sum::<u64>()
    });
    let flat_miss_ns = time_ns_per_op(5, misses.len(), || {
        misses.iter().filter(|&&k| flat.get(k).is_some()).count()
    });
    let fx_miss_ns =
        time_ns_per_op(5, misses.len(), || misses.iter().filter(|&&k| fx.contains_key(&k)).count());

    // --- full-table sweep (batch serving answers from one pass) ---
    let flat_sweep_ns =
        time_ns_per_op(5, survivors, || flat.iter().map(|(_, c)| c as u64).sum::<u64>());
    let fx_sweep_ns = time_ns_per_op(5, survivors, || fx.values().map(|&c| c as u64).sum::<u64>());

    SpectrumBenchReport {
        inserted_keys: n,
        survivors,
        flat: EngineNumbers {
            bytes_per_entry_post_prune: flat_bytes,
            build_ns_per_key: flat_build_ns,
            bulk_ns_per_key: flat_bulk_ns,
            lookup_hit_ns: flat_hit_ns,
            lookup_miss_ns: flat_miss_ns,
            sweep_ns_per_entry: flat_sweep_ns,
        },
        fxhash: EngineNumbers {
            bytes_per_entry_post_prune: fx_bytes,
            build_ns_per_key: fx_build_ns,
            bulk_ns_per_key: fx_bulk_ns,
            lookup_hit_ns: fx_hit_ns,
            lookup_miss_ns: fx_miss_ns,
            sweep_ns_per_entry: fx_sweep_ns,
        },
    }
}

fn engine_json(e: &EngineNumbers) -> String {
    format!(
        "{{\"bytes_per_entry_post_prune\": {:.2}, \"build_ns_per_key\": {:.1}, \
         \"bulk_ns_per_key\": {:.1}, \"lookup_hit_ns\": {:.1}, \"lookup_miss_ns\": {:.1}, \
         \"sweep_ns_per_entry\": {:.1}}}",
        e.bytes_per_entry_post_prune,
        e.build_ns_per_key,
        e.bulk_ns_per_key,
        e.lookup_hit_ns,
        e.lookup_miss_ns,
        e.sweep_ns_per_entry
    )
}

/// Render the `BENCH_spectrum.json` snapshot.
pub fn render_json(r: &SpectrumBenchReport) -> String {
    format!(
        "{{\n  \"workload\": {{\"inserted_keys\": {}, \"survivors\": {}, \"prune_threshold\": 2}},\n  \
         \"flat\": {},\n  \"fxhash\": {},\n  \
         \"ratios\": {{\"bytes_per_entry_improvement\": {:.2}}}\n}}\n",
        r.inserted_keys,
        r.survivors,
        engine_json(&r.flat),
        engine_json(&r.fxhash),
        r.bytes_per_entry_improvement()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_byte_estimate_tracks_hashbrown_geometry() {
        // empty map: header only
        assert_eq!(fx_table_bytes(0, 16), std::mem::size_of::<FxHashMap<u64, u32>>());
        // 7 usable slots -> 8 buckets of 17 bytes
        let header = std::mem::size_of::<FxHashMap<u64, u32>>();
        assert_eq!(fx_table_bytes(7, 16), header + 8 * 17);
        assert_eq!(fx_table_bytes(14, 16), header + 16 * 17);
    }

    /// The acceptance criterion: ≥ 2× lower bytes/entry than the
    /// FxHashMap baseline at the post-prune operating point. Geometry is
    /// deterministic, so this is assertable in CI (latency is reported
    /// in the JSON, not asserted).
    #[test]
    fn flat_store_halves_bytes_per_entry() {
        let r = run(40_000);
        assert!(r.survivors > 0);
        assert!(
            r.bytes_per_entry_improvement() >= 2.0,
            "flat {} B/e vs fxhash {} B/e — improvement {:.2}x < 2x",
            r.flat.bytes_per_entry_post_prune,
            r.fxhash.bytes_per_entry_post_prune,
            r.bytes_per_entry_improvement()
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = run(10_000);
        let json = render_json(&r);
        assert!(json.contains("\"bytes_per_entry_improvement\""));
        assert!(json.contains("\"flat\""));
        assert!(json.contains("\"fxhash\""));
        assert!(json.contains("\"bulk_ns_per_key\""));
        // braces balance
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// The measured bulk-load floor: materializing a flat table from
    /// pre-aggregated sorted entries must cost ≤ 30 ns/key on this host
    /// — the budget the pipelined build's table-materialization stage
    /// is charged against. Release builds only (debug timings measure
    /// the compiler, not the code).
    #[cfg(not(debug_assertions))]
    #[test]
    fn measured_bulk_load_within_budget() {
        let r = run(200_000);
        assert!(
            r.flat.bulk_ns_per_key <= 30.0,
            "flat bulk load {:.1} ns/key > 30 ns/key budget",
            r.flat.bulk_ns_per_key
        );
    }
}
