//! Scaled workloads and shared parameters for the figure harness.
//!
//! Every figure runs on a *scaled-down* dataset (the paper's datasets are
//! 0.9–158 GB) whose per-rank work and traffic are linear in the scale
//! divisor, so modeled times are extrapolated by setting
//! `EngineConfig::scale = divisor` (see DESIGN.md §2 and §6).

use genio::dataset::{DatasetProfile, SyntheticDataset};
use reptile::ReptileParams;

/// Deterministic seed for all figure datasets.
pub const SEED: u64 = 0x5EED_2016;

/// Scale divisor used for the E.coli figure runs. Chosen so that even at
/// the figure's largest rank count (8192) each rank still holds ~20+
/// reads — below that, Poisson count variance of the hash shuffle (not
/// the paper's error clustering) dominates per-rank times.
pub const ECOLI_DIVISOR: usize = 50;
/// Scale divisor for Drosophila (~23 reads/rank at 8192 ranks).
pub const DROSOPHILA_DIVISOR: usize = 500;
/// Scale divisor for Human (~9 reads/rank at 32768 ranks; Fig 8 has no
/// imbalanced series, so the count-variance effect only softens the top
/// end of the scaling curve).
pub const HUMAN_DIVISOR: usize = 5_000;

/// Corrector parameters for all figure runs (k=12 keeps random-genome
/// k-mers near-unique even on scaled genomes; thresholds sized for the
/// profiles' ~50–200X coverage).
pub fn figure_params() -> ReptileParams {
    ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        // tiles are sampled once per stride (= 6) positions, so tile
        // counts run ~6x lower than k-mer counts at equal coverage
        tile_threshold: 4,
        q_threshold: 20,
        max_errors_per_tile: 2,
        max_positions_per_tile: 8,
        max_candidates: 4,
        dominance: 2,
        relax_quality: true,
        canonical: false,
    }
}

/// The scaled E.coli workload.
pub fn ecoli_scaled() -> SyntheticDataset {
    DatasetProfile::ecoli_like().scaled(ECOLI_DIVISOR).generate(SEED)
}

/// The scaled Drosophila workload.
pub fn drosophila_scaled() -> SyntheticDataset {
    DatasetProfile::drosophila_like().scaled(DROSOPHILA_DIVISOR).generate(SEED + 1)
}

/// The scaled Human workload.
pub fn human_scaled() -> SyntheticDataset {
    DatasetProfile::human_like().scaled(HUMAN_DIVISOR).generate(SEED + 2)
}

/// A tiny smoke workload for tests of the harness itself.
pub fn smoke() -> SyntheticDataset {
    DatasetProfile {
        name: "smoke".into(),
        genome_len: 4_000,
        read_len: 60,
        n_reads: 2_500,
        base_error_rate: 0.004,
        hotspot_count: 4,
        hotspot_multiplier: 8.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(SEED + 3)
}

/// Uniform/skewed workload pair for the adaptive-balancing bench: the
/// *same* profile generated with and without the repeat knob, so the two
/// datasets differ only in the repeat run. The skewed half tiles 70% of
/// the genome with a homopolymer — the sharpest possible repeat (one
/// distinct k-mer), so reads from the run hammer a single spectrum
/// owner *and* (being largely identical sequences) hash-shuffle onto a
/// single rank. The pair is larger than [`smoke`]: per-rank read counts
/// concentrate as √n, so the uniform control's natural spread stays
/// small enough that "adaptive ties static on uniform" is a meaningful
/// no-regression check rather than a race against shuffle variance.
pub fn balance_pair() -> (SyntheticDataset, SyntheticDataset) {
    let prof = DatasetProfile {
        name: "balance".into(),
        genome_len: 16_000,
        read_len: 60,
        n_reads: 10_000,
        base_error_rate: 0.004,
        // no hotspots: hotspot oversampling emits duplicate reads that
        // hash-shuffle onto the same rank and carry a multiplied error
        // rate, which by itself skews per-rank lookup traffic ~35% — the
        // uniform control must be genuinely uniform for "adaptive ties
        // static" to be a no-regression check
        hotspot_count: 0,
        hotspot_multiplier: 1.0,
        hotspot_fraction: 0.0,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    };
    (prof.generate(SEED + 4), prof.with_repeats(0.7, 1).generate(SEED + 4))
}

/// Parameters matched to the smoke workload's small genome.
pub fn smoke_params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 3,
        ..figure_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workloads_have_sane_sizes() {
        let e = ecoli_scaled();
        assert_eq!(e.reads.len(), 8_874_761 / ECOLI_DIVISOR);
        assert!(e.genome.len() >= 4 * 102);
        let s = smoke();
        assert_eq!(s.reads.len(), 2_500);
    }

    #[test]
    fn params_valid() {
        figure_params().assert_valid();
        smoke_params().assert_valid();
    }
}
