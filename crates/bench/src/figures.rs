//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figN` function runs the virtual-cluster engine on a scaled
//! workload at the paper's rank/node counts, with times extrapolated to
//! paper scale via `EngineConfig::scale`. Functions return structured
//! results (so tests can assert the *shapes* the paper reports) plus a
//! `render()` that prints the same rows/series the paper plots.

use genio::dataset::SyntheticDataset;
use genio::stats::DatasetStats;
use genio::DatasetProfile;
use mpisim::Topology;
use reptile::ReptileParams;
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::EngineConfig;
use reptile_dist::HeuristicConfig;

/// Mebibytes per byte, for memory rows.
const MIB: f64 = 1024.0 * 1024.0;

fn config(
    np: usize,
    rpn: usize,
    params: ReptileParams,
    heur: HeuristicConfig,
    scale: usize,
) -> EngineConfig {
    EngineConfig {
        topology: Topology::new(rpn),
        heuristics: heur,
        scale: scale as f64,
        ..EngineConfig::virtual_cluster(np, params)
    }
}

// ---------------------------------------------------------------- Table I

/// Table I: the dataset inventory.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table I — datasets (paper-scale profiles)\n");
    out.push_str(&DatasetStats::table_header());
    out.push('\n');
    for p in [
        DatasetProfile::ecoli_like(),
        DatasetProfile::drosophila_like(),
        DatasetProfile::human_like(),
    ] {
        out.push_str(&DatasetStats::from_profile(&p).table_row());
        out.push('\n');
    }
    out.push_str(
        "note: E.coli coverage is computed from the table's own reads/length/genome\n\
         numbers (~197X); the paper prints 96X, inconsistent with its own formula.\n",
    );
    out
}

// ------------------------------------------------------------------ Fig 2

/// One row of Fig 2: 128 ranks at a given ranks-per-node setting.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Row {
    /// Ranks per node (8, 16, 32).
    pub ranks_per_node: usize,
    /// Nodes used (16, 8, 4).
    pub nodes: usize,
    /// Modeled k-mer construction seconds.
    pub construct_secs: f64,
    /// Modeled error-correction seconds.
    pub correct_secs: f64,
    /// Of which communication.
    pub comm_secs: f64,
}

/// Fig 2: execution time of 128 ranks for E.coli, 8/16/32 ranks per node.
pub fn fig2(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> Vec<Fig2Row> {
    [8usize, 16, 32]
        .into_iter()
        .map(|rpn| {
            let cfg = config(128, rpn, params, HeuristicConfig::default(), scale);
            let run = run_virtual(&cfg, &ds.reads);
            Fig2Row {
                ranks_per_node: rpn,
                nodes: 128 / rpn,
                construct_secs: run.report.construct_secs(),
                correct_secs: run.report.correct_secs(),
                comm_secs: run.report.ranks.iter().map(|r| r.comm_secs).fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Render Fig 2 rows.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::from(
        "Fig 2 — E.coli, 128 ranks, varying ranks/node\n\
         rpn nodes construct_s correct_s comm_s\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>3} {:>5} {:>11.1} {:>9.1} {:>6.1}\n",
            r.ranks_per_node, r.nodes, r.construct_secs, r.correct_secs, r.comm_secs
        ));
    }
    out
}

// ------------------------------------------------------------------ Fig 3

/// Fig 3: per-rank k-mer/tile counts for 128 ranks.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// `(kmers, tiles)` owned per rank.
    pub per_rank: Vec<(u64, u64)>,
    /// `(max-min)/mean` spread of k-mer counts, percent.
    pub kmer_spread_pct: f64,
    /// Spread of tile counts, percent.
    pub tile_spread_pct: f64,
}

/// Fig 3: distribution uniformity of the spectra across 128 ranks.
pub fn fig3(ds: &SyntheticDataset, params: ReptileParams) -> Fig3 {
    let cfg = config(128, 32, params, HeuristicConfig::default(), 1);
    let run = run_virtual(&cfg, &ds.reads);
    let per_rank: Vec<(u64, u64)> =
        run.report.ranks.iter().map(|r| (r.build.owned_kmers, r.build.owned_tiles)).collect();
    Fig3 {
        kmer_spread_pct: spread_pct(per_rank.iter().map(|&(k, _)| k)),
        tile_spread_pct: spread_pct(per_rank.iter().map(|&(_, t)| t)),
        per_rank,
    }
}

fn spread_pct(counts: impl Iterator<Item = u64>) -> f64 {
    let v: Vec<u64> = counts.collect();
    let max = *v.iter().max().unwrap_or(&0) as f64;
    let min = *v.iter().min().unwrap_or(&0) as f64;
    let mean = v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    if mean == 0.0 {
        return 0.0;
    }
    (max - min) / mean * 100.0
}

/// Render Fig 3.
pub fn render_fig3(f: &Fig3) -> String {
    let mut out = String::from("Fig 3 — per-rank spectrum sizes, 128 ranks\n");
    out.push_str(&format!(
        "kmer spread (max-min)/mean: {:.2}%   tile spread: {:.2}%\n",
        f.kmer_spread_pct, f.tile_spread_pct
    ));
    out.push_str("rank kmers tiles (every 16th rank)\n");
    for (i, (k, t)) in f.per_rank.iter().enumerate().step_by(16) {
        out.push_str(&format!("{i:>4} {k:>8} {t:>8}\n"));
    }
    out
}

// ------------------------------------------------------------------ Fig 4

/// One load-balance variant of Fig 4.
#[derive(Clone, Debug)]
pub struct Fig4Side {
    /// Total correction seconds of the fastest rank.
    pub fastest_total: f64,
    /// Slowest rank.
    pub slowest_total: f64,
    /// Communication seconds, fastest rank.
    pub fastest_comm: f64,
    /// Communication seconds, slowest rank.
    pub slowest_comm: f64,
    /// Errors corrected, min over ranks.
    pub min_errors: u64,
    /// Errors corrected, max over ranks.
    pub max_errors: u64,
    /// Remote tile lookups, min over ranks.
    pub min_tile_lookups: u64,
    /// Remote tile lookups, max over ranks.
    pub max_tile_lookups: u64,
}

/// Fig 4: balanced vs imbalanced, 128 ranks, E.coli.
pub struct Fig4 {
    /// With the static load-balancing shuffle.
    pub balanced: Fig4Side,
    /// Without it (file-order chunks).
    pub imbalanced: Fig4Side,
}

/// Fig 4: effect of static load balancing, 128 ranks on 4 nodes.
pub fn fig4(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> Fig4 {
    let side = |balance: bool| {
        let heur = HeuristicConfig { load_balance: balance, ..Default::default() };
        let run = run_virtual(&config(128, 32, params, heur, scale), &ds.reads);
        let ranks = &run.report.ranks;
        Fig4Side {
            fastest_total: ranks.iter().map(|r| r.correct_secs).fold(f64::INFINITY, f64::min),
            slowest_total: ranks.iter().map(|r| r.correct_secs).fold(0.0, f64::max),
            fastest_comm: ranks.iter().map(|r| r.comm_secs).fold(f64::INFINITY, f64::min),
            slowest_comm: ranks.iter().map(|r| r.comm_secs).fold(0.0, f64::max),
            min_errors: ranks.iter().map(|r| r.correction.errors_corrected).min().unwrap_or(0),
            max_errors: ranks.iter().map(|r| r.correction.errors_corrected).max().unwrap_or(0),
            min_tile_lookups: ranks
                .iter()
                .map(|r| r.lookups.remote_tile_lookups)
                .min()
                .unwrap_or(0),
            max_tile_lookups: ranks
                .iter()
                .map(|r| r.lookups.remote_tile_lookups)
                .max()
                .unwrap_or(0),
        }
    };
    Fig4 { balanced: side(true), imbalanced: side(false) }
}

/// Render Fig 4.
pub fn render_fig4(f: &Fig4) -> String {
    let row = |name: &str, s: &Fig4Side| {
        format!(
            "{name:<11} total {:>8.1}..{:>8.1}s  comm {:>8.1}..{:>8.1}s  errors {:>7}..{:<7}  tile-lookups {:>9}..{:<9}\n",
            s.fastest_total,
            s.slowest_total,
            s.fastest_comm,
            s.slowest_comm,
            s.min_errors,
            s.max_errors,
            s.min_tile_lookups,
            s.max_tile_lookups,
        )
    };
    format!(
        "Fig 4 — load balance, 128 ranks (fastest..slowest rank)\n{}{}",
        row("imbalanced", &f.imbalanced),
        row("balanced", &f.balanced)
    )
}

// ------------------------------------------------------------------ Fig 5

/// One heuristic row of Fig 5.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Heuristic label.
    pub label: String,
    /// Ranks used (replication rows drop to fewer ranks, as in the paper).
    pub np: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Modeled correction seconds.
    pub correct_secs: f64,
    /// Modeled construction seconds.
    pub construct_secs: f64,
    /// Peak per-rank modeled memory, MiB.
    pub peak_memory_mib: f64,
}

/// Fig 5: the heuristics matrix on E.coli, 32 nodes.
///
/// Layouts follow the paper: base/universal/add-remote/batch run 1024
/// ranks at 32/node; the k-mer/tile replication rows run 256 ranks at
/// 8/node ("these runs were completed with 8 ranks per node as the memory
/// footprint was noticeably higher"); replicate-both runs 1 rank × 64
/// threads per node.
pub fn fig5(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> Vec<Fig5Row> {
    let nodes = 32usize;
    let rows: Vec<(HeuristicConfig, usize, usize, usize)> = vec![
        // (heuristics, np, ranks_per_node, threads_per_rank)
        (HeuristicConfig::default(), nodes * 32, 32, 2),
        (HeuristicConfig { universal: true, ..Default::default() }, nodes * 32, 32, 2),
        (HeuristicConfig { replicate_kmers: true, ..Default::default() }, nodes * 8, 8, 2),
        (HeuristicConfig { replicate_tiles: true, ..Default::default() }, nodes * 8, 8, 2),
        (
            HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
            nodes * 32,
            32,
            2,
        ),
        (HeuristicConfig { batch_reads: true, ..Default::default() }, nodes * 32, 32, 2),
        (HeuristicConfig::replicate_both(), nodes, 1, 64),
    ];
    rows.into_iter()
        .map(|(heur, np, rpn, tpr)| {
            let mut cfg = config(np, rpn, params, heur, scale);
            cfg.topology = Topology::with_threads(rpn, tpr);
            let run = run_virtual(&cfg, &ds.reads);
            Fig5Row {
                label: heur.label(),
                np,
                ranks_per_node: rpn,
                correct_secs: run.report.correct_secs(),
                construct_secs: run.report.construct_secs(),
                peak_memory_mib: run.report.peak_memory_bytes() / MIB,
            }
        })
        .collect()
}

/// Render Fig 5 rows.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::from(
        "Fig 5 — heuristics, E.coli, 32 nodes\n\
         mode                        np  rpn construct_s correct_s peak_MiB\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<25} {:>5} {:>4} {:>11.1} {:>9.1} {:>8.1}\n",
            r.label, r.np, r.ranks_per_node, r.construct_secs, r.correct_secs, r.peak_memory_mib
        ));
    }
    out
}

// ------------------------------------------- §V partial replication

/// One group-size point of the partial-replication sweep.
#[derive(Clone, Copy, Debug)]
pub struct PartialRow {
    /// Replication group size (1 = the paper's base mode).
    pub group: usize,
    /// Modeled correction seconds.
    pub correct_secs: f64,
    /// Peak per-rank memory, MiB.
    pub peak_memory_mib: f64,
    /// Remote lookups across all ranks.
    pub remote_lookups: u64,
}

/// The paper's §V future-work proposal, realized: sweep the partial
/// replication group size and chart the memory↔communication trade-off
/// ("one of the approaches could be to only lower the memory footprint
/// as much as needed").
pub fn partial_sweep(
    ds: &SyntheticDataset,
    params: ReptileParams,
    scale: usize,
) -> Vec<PartialRow> {
    let np = 1024;
    // in-group lookup probability is g/np, so sweep g geometrically up to
    // full replication
    [1usize, 16, 64, 256, 1024]
        .into_iter()
        .map(|g| {
            let heur = HeuristicConfig { partial_group: g, ..Default::default() };
            let run = run_virtual(&config(np, 32, params, heur, scale), &ds.reads);
            PartialRow {
                group: g,
                correct_secs: run.report.correct_secs(),
                peak_memory_mib: run.report.peak_memory_bytes() / MIB,
                remote_lookups: run.report.ranks.iter().map(|r| r.lookups.remote_total()).sum(),
            }
        })
        .collect()
}

/// Render the partial-replication sweep.
pub fn render_partial(rows: &[PartialRow]) -> String {
    let mut out = String::from(
        "Partial replication sweep (beyond paper: its §V proposal), E.coli, 1024 ranks\n\
         group correct_s peak_MiB remote_lookups\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>9.1} {:>8.1} {:>14}\n",
            r.group, r.correct_secs, r.peak_memory_mib, r.remote_lookups
        ));
    }
    out
}

// ------------------------------------------- latency sensitivity

/// One latency point of the sensitivity sweep.
#[derive(Clone, Copy, Debug)]
pub struct LatencyRow {
    /// Inter-node one-way latency, microseconds.
    pub net_latency_us: f64,
    /// Distributed-spectrum correction seconds.
    pub distributed_secs: f64,
    /// Fully replicated correction seconds (message-free).
    pub replicated_secs: f64,
}

/// Beyond-paper sensitivity: how the distributed spectrum's penalty vs
/// full replication grows with network latency. On BG/Q-class fabrics
/// (~3 us) distribution costs single-digit factors; on commodity
/// Ethernet (~30 us+) replication pulls far ahead — quantifying when the
/// paper's memory-for-messages trade is cheap.
pub fn latency_sweep(
    ds: &SyntheticDataset,
    params: ReptileParams,
    scale: usize,
) -> Vec<LatencyRow> {
    let np = 1024;
    [1_000.0f64, 3_000.0, 10_000.0, 30_000.0, 100_000.0]
        .into_iter()
        .map(|lat_ns| {
            let mut dist_cfg = config(np, 32, params, HeuristicConfig::default(), scale);
            dist_cfg.cost = mpisim::CostModel::bgq_with_latency(lat_ns);
            let dist = run_virtual(&dist_cfg, &ds.reads);
            let mut repl_cfg = config(np, 32, params, HeuristicConfig::replicate_both(), scale);
            repl_cfg.cost = mpisim::CostModel::bgq_with_latency(lat_ns);
            let repl = run_virtual(&repl_cfg, &ds.reads);
            LatencyRow {
                net_latency_us: lat_ns / 1000.0,
                distributed_secs: dist.report.correct_secs(),
                replicated_secs: repl.report.correct_secs(),
            }
        })
        .collect()
}

/// Render the latency sweep.
pub fn render_latency(rows: &[LatencyRow]) -> String {
    let mut out = String::from(
        "Latency sensitivity (beyond paper), E.coli, 1024 ranks\n\
         latency_us distributed_s replicated_s ratio\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10.0} {:>13.1} {:>12.1} {:>5.1}\n",
            r.net_latency_us,
            r.distributed_secs,
            r.replicated_secs,
            r.distributed_secs / r.replicated_secs.max(1e-12)
        ));
    }
    out
}

// ------------------------------------- prior-art comparison (SII-B)

/// One row of the prior-art vs this-paper comparison.
#[derive(Clone, Debug)]
pub struct PriorArtRow {
    /// Method label.
    pub method: String,
    /// Modeled correction seconds (slowest rank).
    pub correct_secs: f64,
    /// Peak per-rank memory, MiB.
    pub peak_memory_mib: f64,
    /// Remote spectrum lookups (whole job).
    pub remote_lookups: u64,
}

/// The motivation table: the replicated + dynamic-master prior art
/// (Shah'12/Jammula'15) against this paper's distributed-spectrum engine
/// with static balancing, at the same rank count.
pub fn prior_art_comparison(
    ds: &SyntheticDataset,
    params: ReptileParams,
    scale: usize,
) -> Vec<PriorArtRow> {
    use reptile_dist::{run_prior_art_virtual, PriorArtConfig};
    let np = 1024;
    let cost = mpisim::CostModel::bgq();
    let mut pa_cfg = PriorArtConfig::new(np, params);
    pa_cfg.topology = Topology::new(32);
    pa_cfg.chunk_size = 2000;
    let pa = run_prior_art_virtual(&pa_cfg, &ds.reads, &cost, scale as f64);
    let dist = run_virtual(&config(np, 32, params, HeuristicConfig::default(), scale), &ds.reads);
    let imb = run_virtual(
        &config(
            np,
            32,
            params,
            HeuristicConfig { load_balance: false, ..Default::default() },
            scale,
        ),
        &ds.reads,
    );
    let row = |method: &str, r: &reptile_dist::RunReport| PriorArtRow {
        method: method.to_string(),
        correct_secs: r.correct_secs(),
        peak_memory_mib: r.peak_memory_bytes() / MIB,
        remote_lookups: r.ranks.iter().map(|x| x.lookups.remote_total()).sum(),
    };
    vec![
        row("replicated+dynamic (prior art)", &pa),
        row("distributed+static (this paper)", &dist.report),
        row("distributed, no balancing", &imb.report),
    ]
}

/// Render the prior-art comparison.
pub fn render_prior_art(rows: &[PriorArtRow]) -> String {
    let mut out = String::from(
        "Prior-art comparison (SII-B): replication+dynamic vs distribution+static, 1024 ranks\n\
         method                              correct_s  peak_MiB  remote_lookups\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<35} {:>9.1} {:>9.1} {:>15}\n",
            r.method, r.correct_secs, r.peak_memory_mib, r.remote_lookups
        ));
    }
    out
}

// ---------------------------------------------- SII-A baseline claim

/// Accuracy of one corrector variant.
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// "tiles (Reptile)" or "kmers-only" (the weaker baseline).
    pub method: String,
    /// Net error-removal gain.
    pub gain: f64,
    /// Fraction of true errors fixed.
    pub sensitivity: f64,
    /// Errors introduced.
    pub false_positives: u64,
    /// Windows abandoned as ambiguous.
    pub ambiguous_windows: u64,
}

/// The claim behind Reptile's design: "error correction at the tile level
/// has far fewer candidates than at the k-mer level. Using the tiles
/// leads to more accuracy" (paper SII-A). Ground truth makes it
/// measurable.
pub fn baseline_comparison(ds: &SyntheticDataset, params: ReptileParams) -> Vec<BaselineRow> {
    use reptile::{correct_dataset, correct_dataset_kmers_only, AccuracyReport};
    let (tile_out, tile_stats) = correct_dataset(&ds.reads, &params);
    let (kmer_out, kmer_stats) = correct_dataset_kmers_only(&ds.reads, &params);
    let tile_rep = AccuracyReport::score_dataset(&ds.reads, &tile_out, &ds.truth);
    let kmer_rep = AccuracyReport::score_dataset(&ds.reads, &kmer_out, &ds.truth);
    vec![
        BaselineRow {
            method: "tiles (Reptile)".into(),
            gain: tile_rep.gain(),
            sensitivity: tile_rep.sensitivity(),
            false_positives: tile_rep.false_positives,
            ambiguous_windows: tile_stats.tiles_ambiguous,
        },
        BaselineRow {
            method: "kmers-only".into(),
            gain: kmer_rep.gain(),
            sensitivity: kmer_rep.sensitivity(),
            false_positives: kmer_rep.false_positives,
            ambiguous_windows: kmer_stats.tiles_ambiguous,
        },
    ]
}

/// Render the baseline comparison.
pub fn render_baseline(rows: &[BaselineRow]) -> String {
    let mut out = String::from(
        "Baseline comparison (SII-A claim): tile vs k-mer-only correction\n\
         method            gain  sensitivity  false_pos  ambiguous_windows\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>5.3} {:>11.3} {:>10} {:>18}\n",
            r.method, r.gain, r.sensitivity, r.false_positives, r.ambiguous_windows
        ));
    }
    out
}

// --------------------------------------------------------- ablations

/// One chunk-size point of the batch-reads ablation.
#[derive(Clone, Copy, Debug)]
pub struct ChunkRow {
    /// Reads per chunk.
    pub chunk_size: usize,
    /// Collective rounds executed.
    pub batches: u64,
    /// Peak reads-table entries (max over ranks).
    pub peak_reads_table: u64,
    /// Modeled construction seconds.
    pub construct_secs: f64,
    /// Fraction of extract + exchange time the pipelined build hid by
    /// overlapping the two.
    pub overlap_frac: f64,
    /// Total bytes shipped through count exchanges, MiB, all ranks.
    pub exchanged_mib: f64,
    /// Raw off-rank occurrences per shipped distinct entry.
    pub compression: f64,
}

/// Ablation: the batch-reads chunk-size trade-off the paper exploits for
/// the human runs ("for the 128 and the 256 nodes run, the batch size was
/// only set to 5000 reads, while for the 512 and 1024 node runs, the
/// batch size was set to 10000", §IV) — smaller chunks bound the reads
/// tables at the cost of more collective rounds.
pub fn ablation_chunk(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> Vec<ChunkRow> {
    [50usize, 200, 1000, 5000, 20000]
        .into_iter()
        .map(|chunk| {
            let mut cfg = config(
                128,
                32,
                params,
                HeuristicConfig { batch_reads: true, ..Default::default() },
                scale,
            );
            cfg.chunk_size = chunk;
            let run = run_virtual(&cfg, &ds.reads);
            ChunkRow {
                chunk_size: chunk,
                batches: run.report.ranks.iter().map(|r| r.build.batches).max().unwrap_or(0),
                peak_reads_table: run
                    .report
                    .ranks
                    .iter()
                    .map(|r| r.build.peak_reads_kmers + r.build.peak_reads_tiles)
                    .max()
                    .unwrap_or(0),
                construct_secs: run.report.construct_secs(),
                overlap_frac: run.report.build_overlap_fraction(),
                exchanged_mib: run.report.exchanged_bytes() as f64 / (1024.0 * 1024.0),
                compression: run.report.exchange_compression(),
            }
        })
        .collect()
}

/// Render the chunk-size ablation.
pub fn render_chunk(rows: &[ChunkRow]) -> String {
    let mut out = String::from(
        "Ablation — batch-reads chunk size, E.coli, 128 ranks\n\
         chunk batches peak_reads_table construct_s overlap exch_MiB dedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>7} {:>16} {:>11.2} {:>7.2} {:>8.2} {:>5.2}\n",
            r.chunk_size,
            r.batches,
            r.peak_reads_table,
            r.construct_secs,
            r.overlap_frac,
            r.exchanged_mib,
            r.compression
        ));
    }
    out
}

/// One quality-threshold point of the accuracy ablation.
#[derive(Clone, Copy, Debug)]
pub struct QualityRow {
    /// Phred cutoff for candidate positions.
    pub q_threshold: u8,
    /// Net error-removal gain.
    pub gain: f64,
    /// Fraction of true errors fixed.
    pub sensitivity: f64,
    /// Errors introduced.
    pub false_positives: u64,
}

/// Ablation: quality-threshold sensitivity of the corrector, measurable
/// here because the synthetic datasets carry ground truth.
pub fn ablation_quality(ds: &SyntheticDataset, params: ReptileParams) -> Vec<QualityRow> {
    use reptile::{correct_dataset, AccuracyReport};
    [8u8, 14, 20, 26, 32]
        .into_iter()
        .map(|q| {
            let p = ReptileParams { q_threshold: q, ..params };
            let (corrected, _) = correct_dataset(&ds.reads, &p);
            let rep = AccuracyReport::score_dataset(&ds.reads, &corrected, &ds.truth);
            QualityRow {
                q_threshold: q,
                gain: rep.gain(),
                sensitivity: rep.sensitivity(),
                false_positives: rep.false_positives,
            }
        })
        .collect()
}

/// Render the quality ablation.
pub fn render_quality(rows: &[QualityRow]) -> String {
    let mut out = String::from(
        "Ablation — q_threshold vs accuracy (ground truth)\n\
         q  gain  sensitivity  false_positives\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>2} {:>5.3} {:>11.3} {:>15}\n",
            r.q_threshold, r.gain, r.sensitivity, r.false_positives
        ));
    }
    out
}

// ------------------------------------------------------- Figs 6, 7, 8

/// One rank-count point of a scaling figure.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Ranks.
    pub np: usize,
    /// Nodes (32 ranks/node).
    pub nodes: usize,
    /// Modeled construction seconds.
    pub construct_secs: f64,
    /// Modeled correction seconds (balanced), slowest rank.
    pub correct_secs: f64,
    /// Mean-rank correction seconds — the scaling signal free of the
    /// scaled dataset's per-rank count variance.
    pub correct_mean_secs: f64,
    /// Modeled correction seconds without load balancing (`None` when the
    /// paper, too, could not finish the imbalanced run).
    pub imbalanced_correct_secs: Option<f64>,
}

/// A scaling figure: rows plus the parallel efficiency between the first
/// and last rows.
#[derive(Clone, Debug)]
pub struct ScalingFigure {
    /// Title ("Fig 6 — E.coli", …).
    pub title: String,
    /// One row per rank count.
    pub rows: Vec<ScalingRow>,
    /// Efficiency of the last row vs the first.
    pub efficiency: f64,
}

/// Generic strong-scaling sweep used by Figs 6–8.
pub fn scaling_figure(
    title: &str,
    ds: &SyntheticDataset,
    params: ReptileParams,
    scale: usize,
    rank_counts: &[usize],
    heur: HeuristicConfig,
    with_imbalanced: bool,
) -> ScalingFigure {
    let rows: Vec<ScalingRow> = rank_counts
        .iter()
        .map(|&np| {
            let run = run_virtual(&config(np, 32, params, heur, scale), &ds.reads);
            let imbalanced = if with_imbalanced {
                let h = HeuristicConfig { load_balance: false, ..heur };
                let r = run_virtual(&config(np, 32, params, h, scale), &ds.reads);
                Some(r.report.correct_secs())
            } else {
                None
            };
            ScalingRow {
                np,
                nodes: np / 32,
                construct_secs: run.report.construct_secs(),
                correct_secs: run.report.correct_secs(),
                correct_mean_secs: run.report.correct_secs_mean(),
                imbalanced_correct_secs: imbalanced,
            }
        })
        .collect();
    // Efficiency from mean-rank times: the scaled dataset's Poisson
    // count tail inflates the max at thousands of ranks (documented in
    // EXPERIMENTS.md); the mean tracks the paper's regime.
    let efficiency = match (rows.first(), rows.last()) {
        (Some(a), Some(b)) if b.correct_mean_secs > 0.0 => {
            (a.correct_mean_secs + a.construct_secs) * a.np as f64
                / ((b.correct_mean_secs + b.construct_secs) * b.np as f64)
        }
        _ => 0.0,
    };
    ScalingFigure { title: title.to_string(), rows, efficiency }
}

/// Fig 6: E.coli strong scaling, 1024→8192 ranks, balanced vs imbalanced.
pub fn fig6(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> ScalingFigure {
    scaling_figure(
        "Fig 6 — E.coli scaling (32→256 nodes)",
        ds,
        params,
        scale,
        &[1024, 2048, 4096, 8192],
        HeuristicConfig::default(),
        true,
    )
}

/// Fig 7: Drosophila strong scaling, 1024→8192 ranks (batch-reads on, as
/// the paper's 1024-rank run used it).
pub fn fig7(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> ScalingFigure {
    scaling_figure(
        "Fig 7 — Drosophila scaling (32→256 nodes)",
        ds,
        params,
        scale,
        &[1024, 2048, 4096, 8192],
        HeuristicConfig { batch_reads: true, ..Default::default() },
        true,
    )
}

/// Fig 8: Human strong scaling, 4096→32768 ranks (128→1024 nodes),
/// batch reads + load balancing, as in the paper.
pub fn fig8(ds: &SyntheticDataset, params: ReptileParams, scale: usize) -> ScalingFigure {
    scaling_figure(
        "Fig 8 — Human scaling (128→1024 nodes)",
        ds,
        params,
        scale,
        &[4096, 8192, 16384, 32768],
        HeuristicConfig { batch_reads: true, universal: true, ..Default::default() },
        false,
    )
}

/// Render a scaling figure.
pub fn render_scaling(f: &ScalingFigure) -> String {
    let mut out = format!(
        "{}\n ranks nodes construct_s correct_s(max) correct_s(mean) imbalanced_s\n",
        f.title
    );
    for r in &f.rows {
        out.push_str(&format!(
            "{:>6} {:>5} {:>11.1} {:>14.1} {:>15.1} {}\n",
            r.np,
            r.nodes,
            r.construct_secs,
            r.correct_secs,
            r.correct_mean_secs,
            r.imbalanced_correct_secs
                .map(|s| format!("{s:>12.1}"))
                .unwrap_or_else(|| "      (n/a)".into()),
        ));
    }
    out.push_str(&format!(
        "parallel efficiency {} → {} ranks: {:.2}\n",
        f.rows.first().map(|r| r.np).unwrap_or(0),
        f.rows.last().map(|r| r.np).unwrap_or(0),
        f.efficiency
    ));
    out
}

// ------------------------------------- Ablation: adaptive load balancing

/// One policy × workload row of the adaptive-balancing ablation.
#[derive(Clone, Debug)]
pub struct BalanceRow {
    /// Workload ("skewed" / "uniform").
    pub workload: &'static str,
    /// Policy ("static" / "adaptive").
    pub policy: &'static str,
    /// Modeled makespan, slowest rank, seconds.
    pub makespan_secs: f64,
    /// Remote lookups summed over ranks.
    pub remote_lookups: u64,
    /// Lookups served by a hot-shard replica.
    pub hot_shard_hits: u64,
    /// Read chunks moved by the steal protocol.
    pub chunks_stolen: u64,
    /// `(max − min) / mean` of per-rank correction time.
    pub straggler_spread: f64,
}

/// Ablation: the static paper protocol vs the adaptive balancing layer
/// (top-K hot-shard replication + read-chunk stealing) on the
/// repeat-heavy / uniform workload pair from the balance bench. The
/// uniform rows double as the no-regression control: both skew gates
/// must hold, leaving the adaptive rows identical to the static ones.
pub fn ablation_balance() -> Vec<BalanceRow> {
    use crate::balance_bench::{HOT_K, NP};
    use crate::workloads::{balance_pair, smoke_params};
    let (uni, skew) = balance_pair();
    let mut rows = Vec::new();
    for (workload, ds) in [("skewed", &skew), ("uniform", &uni)] {
        for (policy, heur) in
            [("static", HeuristicConfig::default()), ("adaptive", HeuristicConfig::adaptive(HOT_K))]
        {
            let cfg = EngineConfig {
                heuristics: heur,
                cost: mpisim::CostModel::commodity_cluster(),
                chunk_size: 32,
                ..EngineConfig::virtual_cluster(NP, smoke_params())
            };
            let run = run_virtual(&cfg, &ds.reads);
            rows.push(BalanceRow {
                workload,
                policy,
                makespan_secs: run.report.makespan_secs(),
                remote_lookups: run.report.remote_lookups(),
                hot_shard_hits: run.report.hot_shard_hits(),
                chunks_stolen: run.report.chunks_stolen(),
                straggler_spread: run.report.straggler_spread(),
            });
        }
    }
    rows
}

/// Render the adaptive-balancing ablation.
pub fn render_balance(rows: &[BalanceRow]) -> String {
    let mut out = String::from(
        "Ablation — static vs adaptive balancing, repeat-heavy pair, 8 ranks\n\
         workload policy   makespan_s remote_lookups hot_hits stolen spread\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<8} {:>10.3} {:>14} {:>8} {:>6} {:>6.3}\n",
            r.workload,
            r.policy,
            r.makespan_secs,
            r.remote_lookups,
            r.hot_shard_hits,
            r.chunks_stolen,
            r.straggler_spread
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{smoke, smoke_params};

    #[test]
    fn table1_mentions_all_datasets() {
        let t = table1();
        assert!(t.contains("E.coli") && t.contains("Drosophila") && t.contains("Human"));
        assert!(t.contains("1549111800"));
    }

    #[test]
    fn fig2_shape_32_per_node_slowest() {
        let ds = smoke();
        let rows = fig2(&ds, smoke_params(), 1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].nodes, 16);
        assert_eq!(rows[2].nodes, 4);
        assert!(
            rows[2].correct_secs > rows[0].correct_secs,
            "32/node must be slower than 8/node: {:?}",
            rows
        );
        // k-mer construction is a small fraction of correction (paper obs.)
        assert!(rows[0].construct_secs < rows[0].correct_secs);
    }

    #[test]
    fn fig3_spread_is_small() {
        let ds = smoke();
        let f = fig3(&ds, smoke_params());
        assert_eq!(f.per_rank.len(), 128);
        // The spread is binomial: (max-min)/mean ~ 6/sqrt(mean) over 128
        // ranks. The paper's <1% comes from ~1e6 entries/rank; the smoke
        // dataset has tens, so scale the bound accordingly.
        let mean_k = f.per_rank.iter().map(|&(k, _)| k).sum::<u64>() as f64 / 128.0;
        let mean_t = f.per_rank.iter().map(|&(_, t)| t).sum::<u64>() as f64 / 128.0;
        let bound = |mean: f64| 100.0 * 10.0 / mean.max(1.0).sqrt();
        assert!(
            f.kmer_spread_pct < bound(mean_k),
            "kmer spread {}% vs bound {}% (mean {mean_k})",
            f.kmer_spread_pct,
            bound(mean_k)
        );
        assert!(
            f.tile_spread_pct < bound(mean_t),
            "tile spread {}% vs bound {}% (mean {mean_t})",
            f.tile_spread_pct,
            bound(mean_t)
        );
    }

    #[test]
    fn fig4_balancing_tightens_spread() {
        let ds = smoke();
        let f = fig4(&ds, smoke_params(), 1);
        let spread_imb = f.imbalanced.slowest_total / f.imbalanced.fastest_total.max(1e-12);
        let spread_bal = f.balanced.slowest_total / f.balanced.fastest_total.max(1e-12);
        assert!(
            spread_bal < spread_imb,
            "balancing must tighten the rank-time spread ({spread_bal} vs {spread_imb})"
        );
        assert!(f.balanced.slowest_total <= f.imbalanced.slowest_total);
    }

    #[test]
    fn fig5_shapes() {
        let ds = smoke();
        let rows = fig5(&ds, smoke_params(), 1);
        let find = |label: &str| {
            rows.iter().find(|r| r.label == label).unwrap_or_else(|| panic!("row {label}"))
        };
        let base = find("base");
        let universal = find("universal");
        let repl_tiles = find("repl-tiles");
        let repl_both = find("repl-both");
        assert!(universal.correct_secs < base.correct_secs, "universal faster");
        assert!(repl_both.correct_secs < base.correct_secs, "replication fastest");
        assert!(repl_both.peak_memory_mib > base.peak_memory_mib, "replication costs memory");
        assert!(repl_tiles.peak_memory_mib > base.peak_memory_mib);
    }

    #[test]
    fn fig6_scales_and_balancing_wins() {
        // The full fig6 runs 1024-8192 ranks on the E.coli-scale workload;
        // at smoke scale that would leave ~1 read/rank where hash-shuffle
        // count variance (not error clustering) dominates. Test the same
        // sweep machinery in the regime the figure actually runs in:
        // >= ~20 reads per rank.
        let ds = smoke();
        let f = scaling_figure(
            "smoke scaling",
            &ds,
            smoke_params(),
            1,
            &[8, 16, 32, 64],
            HeuristicConfig::default(),
            true,
        );
        assert_eq!(f.rows.len(), 4);
        assert!(f.rows[3].correct_secs < f.rows[0].correct_secs, "strong scaling");
        assert!(f.rows[3].correct_mean_secs < f.rows[0].correct_mean_secs);
        for r in &f.rows {
            let imb = r.imbalanced_correct_secs.unwrap();
            assert!(imb >= r.correct_secs, "balanced never slower at np={}", r.np);
        }
        assert!(f.efficiency > 0.3 && f.efficiency <= 1.3, "efficiency {}", f.efficiency);
    }

    #[test]
    fn partial_sweep_monotone() {
        let ds = smoke();
        let rows = partial_sweep(&ds, smoke_params(), 1);
        for w in rows.windows(2) {
            assert!(w[1].remote_lookups <= w[0].remote_lookups);
            assert!(w[1].peak_memory_mib >= w[0].peak_memory_mib - 1e-9);
        }
        assert!(rows.last().unwrap().correct_secs < rows[0].correct_secs);
    }

    #[test]
    fn latency_sweep_monotone() {
        let ds = smoke();
        let rows = latency_sweep(&ds, smoke_params(), 1);
        for w in rows.windows(2) {
            assert!(w[1].distributed_secs >= w[0].distributed_secs, "latency hurts distribution");
            // replication is latency-insensitive during correction
            assert!((w[1].replicated_secs - w[0].replicated_secs).abs() < 1e-6);
        }
        let first_ratio = rows[0].distributed_secs / rows[0].replicated_secs;
        let last_ratio =
            rows.last().unwrap().distributed_secs / rows.last().unwrap().replicated_secs;
        assert!(last_ratio > first_ratio, "penalty grows with latency");
    }

    #[test]
    fn prior_art_tradeoff_shapes() {
        let ds = smoke();
        let rows = prior_art_comparison(&ds, smoke_params(), 1);
        assert_eq!(rows.len(), 3);
        let pa = &rows[0];
        let dist = &rows[1];
        // replication removes messages but costs memory
        assert_eq!(pa.remote_lookups, 0);
        assert!(dist.remote_lookups > 0);
        assert!(pa.peak_memory_mib >= dist.peak_memory_mib);
        assert!(pa.correct_secs < dist.correct_secs);
    }

    #[test]
    fn tiles_beat_kmers_only() {
        let ds = smoke();
        let rows = baseline_comparison(&ds, smoke_params());
        assert_eq!(rows.len(), 2);
        let tiles = &rows[0];
        let kmers = &rows[1];
        assert!(
            tiles.gain >= kmers.gain,
            "SII-A: tiles must not lose to k-mers-only ({} vs {})",
            tiles.gain,
            kmers.gain
        );
        assert!(tiles.false_positives <= kmers.false_positives + 5);
    }

    #[test]
    fn ablation_chunk_tradeoff() {
        let ds = smoke();
        let rows = ablation_chunk(&ds, smoke_params(), 1);
        // smaller chunks: more batches, smaller peak tables
        assert!(rows[0].batches >= rows.last().unwrap().batches);
        assert!(rows[0].peak_reads_table <= rows.last().unwrap().peak_reads_table);
        for r in &rows {
            // the pipelined model always hides something with >= 2 rounds
            assert!(r.overlap_frac >= 0.0 && r.overlap_frac < 0.5);
            assert!(r.compression >= 1.0);
            if r.batches > 1 {
                assert!(r.overlap_frac > 0.0, "chunk={} must overlap", r.chunk_size);
            }
        }
        // same distinct keys cross the wire regardless of batching
        // granularity only when chunks don't split duplicate groups; with
        // smaller chunks dedup can only get worse (weakly more bytes)
        assert!(rows[0].exchanged_mib >= rows.last().unwrap().exchanged_mib - 1e-9);
    }

    #[test]
    fn ablation_quality_has_peak() {
        let ds = smoke();
        let rows = ablation_quality(&ds, smoke_params());
        assert_eq!(rows.len(), 5);
        // sensitivity grows (weakly) with a looser cutoff
        assert!(rows.last().unwrap().sensitivity >= rows[0].sensitivity);
        // all gains must be positive on a well-covered dataset
        for r in &rows {
            assert!(r.gain > 0.0, "q={} gain={}", r.q_threshold, r.gain);
        }
    }

    #[test]
    fn renders_do_not_panic() {
        let ds = smoke();
        let p = smoke_params();
        let _ = render_fig2(&fig2(&ds, p, 1));
        let _ = render_fig3(&fig3(&ds, p));
        let _ = render_fig4(&fig4(&ds, p, 1));
        let _ = render_fig5(&fig5(&ds, p, 1));
        let _ = render_scaling(&fig6(&ds, p, 1));
    }

    #[test]
    fn ablation_balance_shapes() {
        let rows = ablation_balance();
        assert_eq!(rows.len(), 4);
        let by = |w: &str, p: &str| {
            rows.iter().find(|r| r.workload == w && r.policy == p).expect("row present")
        };
        // adaptive wins on skew, with both mechanisms visibly engaged
        let (ss, sa) = (by("skewed", "static"), by("skewed", "adaptive"));
        assert!(sa.makespan_secs < ss.makespan_secs);
        assert!(sa.hot_shard_hits > 0 && sa.chunks_stolen > 0);
        assert!(sa.straggler_spread < ss.straggler_spread);
        // on the uniform control both gates hold: the adaptive run *is*
        // the static run
        let (us, ua) = (by("uniform", "static"), by("uniform", "adaptive"));
        assert_eq!(ua.makespan_secs, us.makespan_secs);
        assert_eq!(ua.hot_shard_hits, 0);
        assert_eq!(ua.chunks_stolen, 0);
        let txt = render_balance(&rows);
        assert!(txt.contains("hot_hits") && txt.contains("stolen"));
        assert_eq!(txt.lines().count(), 2 + rows.len());
    }
}
