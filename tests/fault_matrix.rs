//! The fault-injection acceptance matrix: seeded message faults
//! (drop/dup/reorder/delay) across rank counts and both engines must be
//! masked bit-identically by the retry protocol, and a killed owner must
//! degrade gracefully (its keys read as absent everywhere) instead of
//! hanging the run. Writes `target/fault-matrix-report.json` with the
//! degradation counters for the CI artifact.

use genio::dataset::DatasetProfile;
use mpisim::FaultPlan;
use reptile_dist::{engine_by_name, EngineConfig, RunOutput};
use std::fmt::Write as _;
use std::time::Duration;

fn dataset() -> genio::dataset::SyntheticDataset {
    DatasetProfile {
        name: "fault".into(),
        genome_len: 2_500,
        read_len: 60,
        n_reads: 300,
        base_error_rate: 0.006,
        hotspot_count: 2,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(71)
}

fn params() -> reptile::ReptileParams {
    reptile::ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 3,
        tile_threshold: 3,
        ..reptile::ReptileParams::default()
    }
}

fn config(engine: &str, np: usize) -> EngineConfig {
    let base = if engine == "virtual" {
        EngineConfig::virtual_cluster(np, params())
    } else {
        EngineConfig::new(np, params())
    };
    EngineConfig { chunk_size: 120, ..base }
}

/// Everything that must be bit-identical between a faulted run (no kill)
/// and the fault-free reference: corrected reads, correction statistics,
/// spectrum tables' byte accounting, and the exchange accounting.
fn assert_bit_identical(label: &str, clean: &RunOutput, faulted: &RunOutput) {
    assert_eq!(clean.corrected, faulted.corrected, "{label}: corrected output");
    assert_eq!(
        clean.report.errors_corrected(),
        faulted.report.errors_corrected(),
        "{label}: errors corrected"
    );
    assert_eq!(
        clean.report.exchanged_bytes(),
        faulted.report.exchanged_bytes(),
        "{label}: exchanged bytes"
    );
    for (c, f) in clean.report.ranks.iter().zip(&faulted.report.ranks) {
        assert_eq!(
            c.memory_bytes.to_bits(),
            f.memory_bytes.to_bits(),
            "{label}: rank {} memory",
            c.rank
        );
        assert_eq!(c.build.owned_kmers, f.build.owned_kmers, "{label}: rank {} kmers", c.rank);
        assert_eq!(c.build.owned_tiles, f.build.owned_tiles, "{label}: rank {} tiles", c.rank);
        assert_eq!(
            c.lookups.keys_degraded, 0,
            "{label}: clean run must not degrade (rank {})",
            c.rank
        );
        assert_eq!(
            f.lookups.keys_degraded, 0,
            "{label}: faulted run with retries must not degrade (rank {})",
            c.rank
        );
    }
}

struct MatrixRow {
    engine: &'static str,
    np: usize,
    fault: &'static str,
    retried: u64,
    deadline_misses: u64,
    keys_degraded: u64,
}

fn counters(out: &RunOutput) -> (u64, u64, u64) {
    let sum = |f: &dyn Fn(&reptile_dist::LookupStats) -> u64| -> u64 {
        out.report.ranks.iter().map(|r| f(&r.lookups)).sum()
    };
    (sum(&|l| l.requests_retried), sum(&|l| l.deadline_misses), sum(&|l| l.keys_degraded))
}

fn write_report(rows: &[MatrixRow]) {
    let mut json = String::from("{\n  \"fault_matrix\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"np\": {}, \"fault\": \"{}\", \
             \"requests_retried\": {}, \"deadline_misses\": {}, \"keys_degraded\": {}}}{}",
            r.engine,
            r.np,
            r.fault,
            r.retried,
            r.deadline_misses,
            r.keys_degraded,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fault-matrix-report.json", json).expect("write fault-matrix report");
}

/// The headline acceptance grid: drop/dup/reorder/delay × np ∈ {1,3,4}
/// × both engines. With retries enabled and no rank killed, every run is
/// bit-identical to the fault-free reference.
///
/// Deadline waits dominate the runtime (the drop cells pay a real 2 ms
/// wait per lost round trip), so debug builds run the quick smoke test
/// below instead; the CI `fault-matrix` job runs this grid in release.
#[test]
#[cfg_attr(debug_assertions, ignore = "wait-dominated; run in release (CI fault-matrix job)")]
fn benign_fault_grid_is_bit_identical_and_kill_degrades() {
    let ds = dataset();
    // generous budgets: the seeded per-edge decisions are deterministic,
    // but the mt engine's worker/server interleaving on a shared edge
    // shifts per-edge indices between runs, so the bound is statistical.
    // A round trip is lost when either direction drops (p = 1 - 0.9^2 =
    // 0.19 at drop=0.1), so budget 10 leaves P(degrade) ~ 0.19^11 ~ 1e-8
    // per key - negligible even across tens of thousands of lookups.
    // (name, spec, base deadline): lossless faults use a roomy deadline
    // (it never fires); drop runs use a short one so the thousands of
    // seeded losses cost milliseconds each, not tens of milliseconds.
    let faults: &[(&'static str, &'static str, u64)] = &[
        ("drop", "seed=7,drop=0.1", 2),
        ("dup", "seed=8,dup=0.25", 25),
        ("reorder", "seed=9,reorder=0.4", 25),
        ("delay", "seed=10,delay=0.2:200us", 25),
    ];
    let mut rows = Vec::new();
    for engine_name in ["mt", "virtual"] {
        let engine = engine_by_name(engine_name).unwrap();
        for np in [1usize, 3, 4] {
            let clean = engine.run(&config(engine_name, np), &ds.reads);
            for &(name, spec, deadline_ms) in faults {
                let cfg = EngineConfig {
                    fault: FaultPlan::parse(spec).unwrap(),
                    lookup_deadline: Some(Duration::from_millis(deadline_ms)),
                    retry_budget: 10,
                    ..config(engine_name, np)
                };
                cfg.validate().unwrap();
                let faulted = engine.run(&cfg, &ds.reads);
                let label = format!("{engine_name} np={np} {name}");
                assert_bit_identical(&label, &clean, &faulted);
                let (retried, deadline_misses, keys_degraded) = counters(&faulted);
                rows.push(MatrixRow {
                    engine: engine_name,
                    np,
                    fault: name,
                    retried,
                    deadline_misses,
                    keys_degraded,
                });
            }
        }
    }
    // single-rank runs never message, so faults must be invisible there;
    // multi-rank drop runs must actually have exercised the retry path
    for r in &rows {
        if r.np == 1 {
            assert_eq!(r.retried, 0, "np=1 has no messages to retry");
        }
        if r.fault == "drop" && r.np > 1 {
            assert!(r.retried > 0, "{} np={} drop run never retried", r.engine, r.np);
        }
    }

    // --- the kill column: a dead owner degrades, never hangs ---
    for engine_name in ["mt", "virtual"] {
        let engine = engine_by_name(engine_name).unwrap();
        let np = 3;
        let cfg = EngineConfig {
            fault: FaultPlan::parse("seed=3,kill=1").unwrap(),
            lookup_deadline: Some(Duration::from_millis(2)),
            retry_budget: 2,
            heuristics: reptile_dist::HeuristicConfig {
                aggregate_lookups: true,
                ..Default::default()
            },
            ..config(engine_name, np)
        };
        let out = engine.run(&cfg, &ds.reads);
        assert_eq!(out.corrected.len(), ds.reads.len(), "{engine_name}: kill must not lose reads");
        let (_, _, keys_degraded) = counters(&out);
        assert!(keys_degraded > 0, "{engine_name}: killed owner must degrade some keys");
        assert_eq!(
            out.report.ranks[1].lookups.requests_served, 0,
            "{engine_name}: the killed rank serves nothing"
        );
        rows.push(MatrixRow {
            engine: if engine_name == "mt" { "mt" } else { "virtual" },
            np,
            fault: "kill",
            retried: counters(&out).0,
            deadline_misses: counters(&out).1,
            keys_degraded,
        });
    }

    write_report(&rows);
}

/// Debug-build smoke slice of the matrix: one lossy cell and one kill
/// cell per engine at np = 3, on a small slice of the reads, so plain
/// `cargo test` still drives the retry protocol end to end without the
/// full grid's minutes of deadline waits.
#[test]
fn fault_smoke_drop_masks_and_kill_degrades() {
    let ds = dataset();
    let reads = &ds.reads[..45];
    for engine_name in ["mt", "virtual"] {
        let engine = engine_by_name(engine_name).unwrap();
        let clean = engine.run(&config(engine_name, 3), reads);
        let cfg = EngineConfig {
            fault: FaultPlan::parse("seed=7,drop=0.1").unwrap(),
            lookup_deadline: Some(Duration::from_millis(2)),
            retry_budget: 10,
            ..config(engine_name, 3)
        };
        let faulted = engine.run(&cfg, reads);
        assert_bit_identical(&format!("{engine_name} smoke drop"), &clean, &faulted);
        let (retried, _, _) = counters(&faulted);
        assert!(retried > 0, "{engine_name}: smoke drop run never retried");

        // a killed owner degrades immediately (no retries) and the run
        // still completes with every read accounted for
        let cfg = EngineConfig {
            fault: FaultPlan::parse("seed=3,kill=1").unwrap(),
            lookup_deadline: Some(Duration::from_millis(1)),
            retry_budget: 0,
            ..config(engine_name, 3)
        };
        let out = engine.run(&cfg, reads);
        assert_eq!(out.corrected.len(), reads.len(), "{engine_name}: kill must not lose reads");
        let (_, _, keys_degraded) = counters(&out);
        assert!(keys_degraded > 0, "{engine_name}: killed owner must degrade some keys");
    }
}
