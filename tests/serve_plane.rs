//! Serve-plane integration: the long-lived [`ServeEngine`] admission
//! queue under message faults and a stalled rank.
//!
//! The serve loop's invariant is that no collective runs between
//! startup and shutdown, so a misbehaving rank can slow or degrade the
//! requests *it* serves but can never wedge the shared queue. These
//! tests drive the queue with backpressure-retrying submitters and
//! assert three things: the queue stays bounded, every request
//! completes within a progress deadline (degraded, not hung), and the
//! fault-free slice of the responses is bit-identical to batch mode.

use dnaseq::Read;
use genio::dataset::DatasetProfile;
use mpisim::FaultPlan;
use reptile::{LocalSpectra, ReptileParams};
use reptile_dist::snapshot::save_snapshot_serial;
use reptile_dist::{
    try_run_distributed, EngineConfig, HeuristicConfig, ServeConfig, ServeEngine, ServeResponse,
    SubmitError,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const NP: usize = 4;

fn params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 3,
        tile_threshold: 3,
        ..ReptileParams::default()
    }
}

fn spectrum_reads() -> Vec<Read> {
    DatasetProfile {
        name: "serve-plane".into(),
        genome_len: 2_500,
        read_len: 60,
        n_reads: 2_000,
        base_error_rate: 0.004,
        hotspot_count: 2,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(83)
    .reads
}

/// Requests drawn over the same genome (same seed + genome length).
fn request_reads(n: usize) -> Vec<Read> {
    let mut reads = DatasetProfile {
        name: "serve-plane".into(),
        genome_len: 2_500,
        read_len: 60,
        n_reads: n,
        base_error_rate: 0.008,
        hotspot_count: 2,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(83)
    .reads;
    for (i, r) in reads.iter_mut().enumerate() {
        r.id = i as u64 + 1;
    }
    reads
}

fn snapshot_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("reptile-serve-plane-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reads = spectrum_reads();
    let p = params();
    let built = LocalSpectra::build(&reads, &p);
    save_snapshot_serial(&dir, &p, NP, 0, &built.kmers, &built.tiles).expect("save snapshot");
    dir
}

fn base_config(snapshot: &PathBuf) -> EngineConfig {
    EngineConfig::builder(NP, params())
        .heuristics(HeuristicConfig { aggregate_lookups: true, ..HeuristicConfig::base() })
        .load_spectrum(snapshot)
        .build()
        .expect("serve plane config")
}

/// Submit every read (retrying on backpressure) and drain until all
/// complete, asserting the queue never exceeds its high-water mark and
/// that progress never stalls longer than `progress` — a wedged queue
/// fails here instead of hanging the test runner.
fn drive(
    engine: &ServeEngine,
    reads: &[Read],
    depth: usize,
    progress: Duration,
) -> (Vec<ServeResponse>, u64, usize) {
    let mut responses = Vec::with_capacity(reads.len());
    let mut rejected = 0u64;
    let mut max_queue = 0usize;
    let mut last_progress = Instant::now();
    for read in reads {
        let mut pending = read.clone();
        loop {
            max_queue = max_queue.max(engine.queue_len());
            match engine.submit(pending.id, pending) {
                Ok(()) => {
                    last_progress = Instant::now();
                    break;
                }
                Err(SubmitError::Backpressure { read, retry_after, queue_len }) => {
                    assert!(
                        queue_len <= depth,
                        "queue overflowed its high-water mark: {queue_len} > {depth}"
                    );
                    rejected += 1;
                    let before = responses.len();
                    responses.append(&mut engine.drain());
                    if responses.len() > before {
                        last_progress = Instant::now();
                    }
                    assert!(
                        last_progress.elapsed() < progress,
                        "no progress for {progress:?} with the queue full — serve plane wedged"
                    );
                    std::thread::sleep(retry_after.min(Duration::from_millis(20)));
                    pending = read;
                }
                Err(SubmitError::Closed(_)) => panic!("engine closed mid-test"),
            }
        }
    }
    while responses.len() < reads.len() {
        let before = responses.len();
        responses.append(&mut engine.drain());
        if responses.len() > before {
            last_progress = Instant::now();
        }
        assert!(
            last_progress.elapsed() < progress,
            "drained {}/{} then no progress for {progress:?} — serve plane wedged",
            responses.len(),
            reads.len()
        );
        std::thread::sleep(Duration::from_micros(500));
    }
    responses.sort_unstable_by_key(|r| r.read.id);
    (responses, rejected, max_queue)
}

/// Reference outputs from batch mode on the same snapshot, by read id.
fn batch_reference(cfg: &EngineConfig, reads: &[Read]) -> HashMap<u64, Read> {
    let clean = EngineConfig { fault: FaultPlan::default(), ..cfg.clone() };
    try_run_distributed(&clean, reads)
        .expect("clean batch run")
        .corrected
        .into_iter()
        .map(|r| (r.id, r))
        .collect()
}

/// Lossy-but-maskable faults (drop + delay, retries in budget): every
/// response must complete *and* stay bit-identical to batch mode — the
/// retry protocol hides the faults entirely, so the "fault-free slice"
/// is the whole request stream.
#[test]
#[cfg_attr(debug_assertions, ignore = "wait-dominated (fault retries); run in release")]
fn dropped_and_delayed_messages_mask_bit_identically() {
    let dir = snapshot_dir("drop-delay");
    let cfg = EngineConfig {
        fault: FaultPlan::parse("seed=9,drop=0.1,delay=0.05:300us").unwrap(),
        lookup_deadline: Some(Duration::from_millis(5)),
        retry_budget: 12,
        ..base_config(&dir)
    };
    let reads = request_reads(500);
    let reference = batch_reference(&cfg, &reads);

    let serve = ServeConfig { queue_depth: 48, max_batch: 16 };
    let engine = ServeEngine::start(cfg, serve, Vec::new()).expect("engine start");
    let (responses, rejected, max_queue) =
        drive(&engine, &reads, serve.queue_depth, Duration::from_secs(30));
    let report = engine.shutdown().expect("shutdown");

    assert!(max_queue <= serve.queue_depth, "queue unbounded: {max_queue}");
    assert!(rejected > 0, "a 48-deep queue fed 500 reads must engage backpressure");
    assert_eq!(responses.len(), reads.len());
    assert_eq!(report.lookups.keys_degraded, 0, "budgeted retries must mask drop/delay fully");
    for r in &responses {
        assert!(!r.degraded);
        assert_eq!(
            Some(&r.read),
            reference.get(&r.read.id),
            "read {} diverged from batch mode under masked faults",
            r.read.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled rank (every 8th send held for 20ms) slows the requests it
/// touches but must neither wedge the queue nor change any output:
/// stalls delay, they do not lose messages, so with no deadline set
/// every lookup still resolves exactly.
#[test]
#[cfg_attr(debug_assertions, ignore = "wait-dominated (rank stalls); run in release")]
fn stalled_rank_slows_but_does_not_wedge_the_queue() {
    let dir = snapshot_dir("stall");
    let cfg = EngineConfig {
        fault: FaultPlan::parse("seed=5,stall=2:8:20ms").unwrap(),
        ..base_config(&dir)
    };
    let reads = request_reads(300);
    let reference = batch_reference(&cfg, &reads);

    let serve = ServeConfig { queue_depth: 32, max_batch: 8 };
    let engine = ServeEngine::start(cfg, serve, Vec::new()).expect("engine start");
    let (responses, _rejected, max_queue) =
        drive(&engine, &reads, serve.queue_depth, Duration::from_secs(60));
    let report = engine.shutdown().expect("shutdown");

    assert!(max_queue <= serve.queue_depth, "queue unbounded: {max_queue}");
    assert_eq!(responses.len(), reads.len(), "stall must delay requests, not lose them");
    assert_eq!(report.lookups.keys_degraded, 0);
    for r in &responses {
        assert_eq!(Some(&r.read), reference.get(&r.read.id), "read {} diverged", r.read.id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drops with a *tight* retry budget: some lookups exhaust their
/// retries and degrade to "absent everywhere" (PR semantics: count 0),
/// but every request still completes and the responses whose
/// micro-batches saw no degradation — the fault-free slice — stay
/// bit-identical to batch mode.
#[test]
#[cfg_attr(debug_assertions, ignore = "wait-dominated (deadline misses); run in release")]
fn exhausted_retries_degrade_requests_without_wedging() {
    let dir = snapshot_dir("degrade");
    let cfg = EngineConfig {
        fault: FaultPlan::parse("seed=13,drop=0.45").unwrap(),
        lookup_deadline: Some(Duration::from_millis(1)),
        retry_budget: 1,
        ..base_config(&dir)
    };
    let reads = request_reads(400);
    let reference = batch_reference(&cfg, &reads);

    let serve = ServeConfig { queue_depth: 64, max_batch: 16 };
    let engine = ServeEngine::start(cfg, serve, Vec::new()).expect("engine start");
    let (responses, _rejected, max_queue) =
        drive(&engine, &reads, serve.queue_depth, Duration::from_secs(60));
    let report = engine.shutdown().expect("shutdown");

    assert!(max_queue <= serve.queue_depth, "queue unbounded: {max_queue}");
    assert_eq!(responses.len(), reads.len(), "degraded requests must still complete");
    assert!(
        report.lookups.keys_degraded > 0,
        "a 45% drop rate against a 1-retry budget must degrade some lookups"
    );
    let clean: Vec<&ServeResponse> = responses.iter().filter(|r| !r.degraded).collect();
    assert!(!clean.is_empty(), "some micro-batches must dodge the drops entirely");
    for r in clean {
        assert_eq!(
            Some(&r.read),
            reference.get(&r.read.id),
            "fault-free slice: read {} diverged from batch mode",
            r.read.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-free sanity at the integration level (runs in debug too): a
/// snapshot-backed serve engine with a small queue matches batch mode
/// exactly and reports sane accounting.
#[test]
fn fault_free_serve_matches_batch_mode() {
    let dir = snapshot_dir("clean");
    let cfg = base_config(&dir);
    let reads = request_reads(200);
    let reference = batch_reference(&cfg, &reads);

    let serve = ServeConfig { queue_depth: 64, max_batch: 32 };
    let engine = ServeEngine::start(cfg, serve, Vec::new()).expect("engine start");
    let (responses, _rejected, max_queue) =
        drive(&engine, &reads, serve.queue_depth, Duration::from_secs(60));
    let report = engine.shutdown().expect("shutdown");

    assert!(max_queue <= serve.queue_depth);
    assert_eq!(responses.len(), reads.len());
    assert_eq!(report.completed, reads.len() as u64);
    assert_eq!(report.lookups.keys_degraded, 0);
    assert!(report.batches >= 1 && report.mean_batch() >= 1.0);
    for r in &responses {
        assert!(!r.degraded);
        assert_eq!(Some(&r.read), reference.get(&r.read.id), "read {} diverged", r.read.id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
