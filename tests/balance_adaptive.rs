//! Adaptive-balancing acceptance tests: hot-shard replication and
//! read-chunk stealing must be invisible in the output — bit-identical
//! to the sequential corrector across rank counts, replication budgets
//! and both engines — and must compose with the fault-injection plane
//! (dropped or delayed steal traffic degrades gracefully, never hangs).

use genio::dataset::DatasetProfile;
use mpisim::FaultPlan;
use proptest::prelude::*;
use reptile::correct_dataset;
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};
use std::time::Duration;

/// A repeat-heavy workload: 50% of the genome is a homopolymer run, so
/// its reads hammer one spectrum owner (exercising replication) and —
/// being largely identical sequences — hash-shuffle onto one rank
/// (exercising the steal gate and the steal protocol).
fn skewed_dataset(seed: u64) -> genio::dataset::SyntheticDataset {
    DatasetProfile {
        name: "skew".into(),
        genome_len: 2_500,
        read_len: 60,
        n_reads: 400,
        base_error_rate: 0.006,
        hotspot_count: 0,
        hotspot_multiplier: 1.0,
        hotspot_fraction: 0.0,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .with_repeats(0.5, 1)
    .generate(seed)
}

fn params() -> reptile::ReptileParams {
    reptile::ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 3,
        tile_threshold: 3,
        ..reptile::ReptileParams::default()
    }
}

fn adaptive(k: usize, steal: bool) -> HeuristicConfig {
    HeuristicConfig { hot_shard_k: k, steal_chunks: steal, ..HeuristicConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The bit-identity matrix: every replication budget (off, minimal,
    /// several, everything) with and without stealing, on both engines,
    /// must reproduce the sequential corrector exactly on skewed data.
    #[test]
    fn adaptive_settings_are_output_invariant(
        seed in 0u64..4,
        np in prop::sample::select(vec![1usize, 3, 4]),
        k in prop::sample::select(vec![0usize, 1, 4, usize::MAX]),
        steal in any::<bool>(),
    ) {
        let ds = skewed_dataset(seed);
        let p = params();
        let (seq_out, _) = correct_dataset(&ds.reads, &p);
        let heur = adaptive(k, steal);
        let mut cfg = EngineConfig::new(np, p);
        cfg.heuristics = heur;
        cfg.chunk_size = 40;
        let t = run_distributed(&cfg, &ds.reads);
        prop_assert_eq!(&t.corrected, &seq_out, "threaded np={} k={} steal={}", np, k, steal);
        let mut vcfg = EngineConfig::virtual_cluster(np, p);
        vcfg.heuristics = heur;
        vcfg.chunk_size = 40;
        let v = run_virtual(&vcfg, &ds.reads);
        prop_assert_eq!(&v.corrected, &seq_out, "virtual np={} k={} steal={}", np, k, steal);
    }
}

/// The mechanisms must actually engage on this workload — otherwise the
/// matrix above only ever tests the gates.
#[test]
fn adaptive_mechanisms_engage_on_skew() {
    let ds = skewed_dataset(1);
    let mut cfg = EngineConfig::virtual_cluster(8, params());
    cfg.heuristics = adaptive(2, true);
    cfg.chunk_size = 10;
    let run = run_virtual(&cfg, &ds.reads);
    assert!(run.report.hot_shard_hits() > 0, "hot replicas never hit");
    assert!(run.report.chunks_stolen() > 0, "steal gate never opened");
}

/// Faults on the correction plane — which now carries the seq-stamped
/// steal traffic too — must be masked by the at-least-once protocol:
/// same output as the fault-free adaptive run, nothing degraded, and
/// the run terminates (completion of this test is the no-hang claim).
///
/// Deadline waits dominate the drop cells' runtime, so debug builds skip
/// this (the CI fault-matrix job runs it in release), mirroring the main
/// fault grid in `fault_matrix.rs`.
#[test]
#[cfg_attr(debug_assertions, ignore = "wait-dominated; run in release (CI fault-matrix job)")]
fn adaptive_composes_with_fault_plans() {
    let ds = skewed_dataset(2);
    let p = params();
    let base = |np: usize| {
        let mut cfg = EngineConfig::new(np, p);
        cfg.heuristics = adaptive(2, true);
        cfg.chunk_size = 40;
        cfg
    };
    let faults: &[(&str, &str, u64)] =
        &[("drop", "seed=7,drop=0.1", 2), ("delay", "seed=10,delay=0.2:200us", 25)];
    for np in [3usize, 4] {
        let clean = run_distributed(&base(np), &ds.reads);
        for &(name, spec, deadline_ms) in faults {
            let cfg = EngineConfig {
                fault: FaultPlan::parse(spec).unwrap(),
                lookup_deadline: Some(Duration::from_millis(deadline_ms)),
                retry_budget: 10,
                ..base(np)
            };
            cfg.validate().unwrap();
            let faulted = run_distributed(&cfg, &ds.reads);
            assert_eq!(
                clean.corrected, faulted.corrected,
                "np={np} {name}: faulted adaptive run diverged"
            );
            let degraded: u64 = faulted.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
            assert_eq!(degraded, 0, "np={np} {name}: retries must mask benign faults");
        }
    }
}
