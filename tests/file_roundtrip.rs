//! File-backed pipeline integration: Step I partitioned reading feeding
//! the distributed engine, plus failure injection on malformed inputs.

use genio::dataset::DatasetProfile;
use genio::{PartitionedReader, RunConfig};
use reptile::ReptileParams;
use reptile_dist::{
    run_distributed, run_distributed_files, try_run_distributed_files, EngineConfig,
};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("reptile-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 4,
        ..ReptileParams::default()
    }
}

#[test]
fn file_run_matches_in_memory_run() {
    let dir = tempdir("match");
    let ds = DatasetProfile {
        name: "f".into(),
        genome_len: 4_000,
        read_len: 64,
        n_reads: 1_200,
        base_error_rate: 0.005,
        hotspot_count: 2,
        hotspot_multiplier: 6.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.001,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(21);
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    ds.write_files(&fasta, &qual).unwrap();

    let cfg = EngineConfig::new(5, params());
    let from_files = run_distributed_files(&cfg, &fasta, &qual).unwrap();
    let in_memory = run_distributed(&cfg, &ds.reads);
    assert_eq!(from_files.corrected, in_memory.corrected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The build-once / correct-many file pipeline: one run persists the
/// spectra with `save_spectrum`, later file-backed runs skip Steps II–III
/// with `load_spectrum` — at the same np and at a re-sharded np — and
/// still correct bit-identically.
#[test]
fn file_runs_serve_from_a_saved_spectrum() {
    let dir = tempdir("serve");
    let ds = DatasetProfile {
        name: "s".into(),
        genome_len: 3_000,
        read_len: 60,
        n_reads: 900,
        base_error_rate: 0.005,
        hotspot_count: 1,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.001,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(33);
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    ds.write_files(&fasta, &qual).unwrap();
    let snap = dir.join("spectrum");

    let save_cfg =
        EngineConfig { save_spectrum: Some(snap.clone()), ..EngineConfig::new(4, params()) };
    let built = try_run_distributed_files(&save_cfg, &fasta, &qual).unwrap();
    assert!(built.report.snapshot_bytes_written() > 0);
    assert!(snap.join("MANIFEST.txt").is_file(), "save must leave a manifest behind");

    for np in [4usize, 3] {
        let load_cfg =
            EngineConfig { load_spectrum: Some(snap.clone()), ..EngineConfig::new(np, params()) };
        let served = try_run_distributed_files(&load_cfg, &fasta, &qual).unwrap();
        assert_eq!(served.corrected, built.corrected, "np={np}");
        assert!(served.report.snapshot_bytes_read() > 0, "np={np}");
        assert_eq!(
            served.report.ranks.iter().map(|r| r.build.exchange_bytes).sum::<u64>(),
            0,
            "np={np}: a served run must not pay the build exchange"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partitioned_reading_covers_dataset_once() {
    let dir = tempdir("cover");
    let ds = DatasetProfile {
        name: "c".into(),
        genome_len: 2_000,
        read_len: 50,
        n_reads: 333,
        base_error_rate: 0.003,
        hotspot_count: 0,
        hotspot_multiplier: 1.0,
        hotspot_fraction: 0.0,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(5);
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    ds.write_files(&fasta, &qual).unwrap();
    for np in [1usize, 4, 13] {
        let mut all = Vec::new();
        for rank in 0..np {
            let mut part = PartitionedReader::open(&fasta, &qual, np, rank).unwrap();
            all.extend(part.read_all().unwrap());
        }
        all.sort_by_key(|r| r.id);
        assert_eq!(all, ds.reads, "np={np}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_quality_file_fails_cleanly() {
    let dir = tempdir("trunc");
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    std::fs::write(&fasta, b">1\nACGTACGTACGTACGTACGT\n>2\nACGTACGTACGTACGTACGT\n").unwrap();
    // quality file missing the second record entirely
    std::fs::write(&qual, b">1\n30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30\n")
        .unwrap();
    let cfg = EngineConfig::new(2, params());
    let err = match run_distributed_files(&cfg, &fasta, &qual) {
        Err(e) => e,
        Ok(_) => panic!("truncated quality file must fail"),
    };
    let msg = err.to_string();
    assert!(
        msg.contains("quality") || msg.contains("not present") || msg.contains("aborted"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_lengths_fail_cleanly() {
    let dir = tempdir("len");
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    std::fs::write(&fasta, b">1\nACGT\n").unwrap();
    std::fs::write(&qual, b">1\n30 30 30\n").unwrap();
    let cfg = EngineConfig::new(1, params());
    assert!(run_distributed_files(&cfg, &fasta, &qual).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn config_file_drives_parameters() {
    let text = "\
        fasta_file = a.fa\n\
        qual_file = a.qual\n\
        k = 10\n\
        tile_overlap = 5\n\
        kmer_threshold = 4\n\
        tile_threshold = 4\n\
        chunk_size = 100\n";
    let cfg = RunConfig::parse(text).unwrap();
    let p = ReptileParams {
        k: cfg.k,
        tile_overlap: cfg.tile_overlap,
        kmer_threshold: cfg.kmer_threshold,
        tile_threshold: cfg.tile_threshold,
        q_threshold: cfg.q_threshold,
        max_errors_per_tile: cfg.max_errors_per_tile,
        max_positions_per_tile: cfg.max_positions_per_tile,
        max_candidates: cfg.max_candidates,
        canonical: cfg.canonical,
        ..ReptileParams::default()
    };
    p.assert_valid();
    assert_eq!(p.k, 10);
    assert_eq!(p.tile_overlap, 5);
}

#[test]
fn reads_shorter_than_a_tile_pass_through() {
    let dir = tempdir("short");
    let fasta = dir.join("r.fa");
    let qual = dir.join("r.qual");
    // read 1 is shorter than the tile length (15); read 2 is normal
    std::fs::write(&fasta, b">1\nACGTACGT\n>2\nACGTACGTACGTACGTACGTACGT\n").unwrap();
    std::fs::write(
        &qual,
        b">1\n30 30 30 30 30 30 30 30\n>2\n30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30\n",
    )
    .unwrap();
    let cfg = EngineConfig::new(2, params());
    let out = run_distributed_files(&cfg, &fasta, &qual).unwrap();
    assert_eq!(out.corrected.len(), 2);
    assert_eq!(out.corrected[0].seq, b"ACGTACGT".to_vec(), "short read untouched");
    std::fs::remove_dir_all(&dir).unwrap();
}
