//! The reproduction's central invariant: sequential Reptile, the threaded
//! distributed engine, and the virtual-cluster engine produce identical
//! corrected reads — on any rank count and under every heuristic.

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, ReptileParams};
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};

fn dataset(seed: u64, both_strands: bool) -> genio::dataset::SyntheticDataset {
    DatasetProfile {
        name: "it".into(),
        genome_len: 6_000,
        read_len: 70,
        n_reads: 2_500,
        base_error_rate: 0.004,
        hotspot_count: 3,
        hotspot_multiplier: 8.0,
        hotspot_fraction: 0.1,
        both_strands,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(seed)
}

fn params(canonical: bool) -> ReptileParams {
    ReptileParams {
        k: 11,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 4,
        canonical,
        ..ReptileParams::default()
    }
}

#[test]
fn threaded_engine_matches_sequential_across_rank_counts() {
    let ds = dataset(1, false);
    let p = params(false);
    let (seq, seq_stats) = correct_dataset(&ds.reads, &p);
    assert!(seq_stats.errors_corrected > 100, "dataset must exercise the corrector");
    for np in [1usize, 2, 5, 8] {
        let out = run_distributed(&EngineConfig::new(np, p), &ds.reads);
        assert_eq!(out.corrected, seq, "np={np}");
    }
}

#[test]
fn virtual_engine_matches_sequential_across_rank_counts() {
    let ds = dataset(2, false);
    let p = params(false);
    let (seq, _) = correct_dataset(&ds.reads, &p);
    for np in [1usize, 3, 64, 1024] {
        let run = run_virtual(&EngineConfig::virtual_cluster(np, p), &ds.reads);
        assert_eq!(run.corrected, seq, "np={np}");
    }
}

#[test]
fn virtual_and_threaded_agree_under_heuristics() {
    let ds = dataset(3, false);
    let p = params(false);
    let matrix = [
        HeuristicConfig::base(),
        HeuristicConfig { universal: true, ..Default::default() },
        HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
        HeuristicConfig::replicate_both(),
        HeuristicConfig::paper_production(),
        HeuristicConfig { load_balance: false, ..Default::default() },
        HeuristicConfig { partial_group: 2, ..Default::default() },
    ];
    for heur in matrix {
        let mut mt_cfg = EngineConfig::new(4, p);
        mt_cfg.heuristics = heur;
        mt_cfg.chunk_size = 300;
        let mt = run_distributed(&mt_cfg, &ds.reads);
        let mut v_cfg = EngineConfig::virtual_cluster(4, p);
        v_cfg.heuristics = heur;
        v_cfg.chunk_size = 300;
        let virt = run_virtual(&v_cfg, &ds.reads);
        assert_eq!(mt.corrected, virt.corrected, "heur={}", heur.label());
    }
}

#[test]
fn canonical_mode_agrees_on_double_stranded_data() {
    let ds = dataset(4, true);
    let p = params(true);
    let (seq, stats) = correct_dataset(&ds.reads, &p);
    assert!(stats.errors_corrected > 50, "canonical spectra must still correct");
    let out = run_distributed(&EngineConfig::new(6, p), &ds.reads);
    assert_eq!(out.corrected, seq);
    let virt = run_virtual(&EngineConfig::virtual_cluster(37, p), &ds.reads);
    assert_eq!(virt.corrected, seq);
}

#[test]
fn correction_statistics_agree_across_engines() {
    let ds = dataset(5, false);
    let p = params(false);
    let (_, seq_stats) = correct_dataset(&ds.reads, &p);
    let mt = run_distributed(&EngineConfig::new(4, p), &ds.reads);
    let virt = run_virtual(&EngineConfig::virtual_cluster(4, p), &ds.reads);
    assert_eq!(mt.report.errors_corrected(), seq_stats.errors_corrected);
    assert_eq!(virt.report.errors_corrected(), seq_stats.errors_corrected);
    let mt_reads: u64 = mt.report.ranks.iter().map(|r| r.reads_processed).sum();
    assert_eq!(mt_reads, ds.reads.len() as u64);
}

#[test]
fn distributed_correction_is_idempotent() {
    let ds = dataset(6, false);
    let p = params(false);
    let cfg = EngineConfig::new(4, p);
    let once = run_distributed(&cfg, &ds.reads);
    let twice = run_distributed(&cfg, &once.corrected);
    let thrice = run_distributed(&cfg, &twice.corrected);
    // Repeated passes legitimately correct a little more (removing errors
    // sharpens the spectra), but the process must converge: each pass
    // changes no more reads than the previous one, and the volume is a
    // small fraction of the dataset.
    let diff = |a: &[dnaseq::Read], b: &[dnaseq::Read]| {
        a.iter().zip(b).filter(|(x, y)| x.seq != y.seq).count()
    };
    let d12 = diff(&twice.corrected, &once.corrected);
    let d23 = diff(&thrice.corrected, &twice.corrected);
    assert!(d12 * 10 <= ds.reads.len(), "second pass changed {d12} of {} reads", ds.reads.len());
    assert!(d23 <= d12, "passes must converge: {d12} then {d23}");
}
