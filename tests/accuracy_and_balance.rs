//! End-to-end behavioural tests: correction accuracy against ground
//! truth, and the load-imbalance phenomenon + its static-balancing fix
//! (the paper's §III-A / Fig 4 at test scale).

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, AccuracyReport, ReptileParams};
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::EngineConfig;
use reptile_dist::HeuristicConfig;

fn well_covered_dataset(seed: u64) -> genio::dataset::SyntheticDataset {
    DatasetProfile {
        name: "acc".into(),
        genome_len: 8_000,
        read_len: 80,
        n_reads: 6_000, // 60X coverage
        base_error_rate: 0.004,
        hotspot_count: 4,
        hotspot_multiplier: 10.0,
        hotspot_fraction: 0.12,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(seed)
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        tile_threshold: 5,
        ..ReptileParams::default()
    }
}

#[test]
fn corrector_achieves_positive_gain() {
    let ds = well_covered_dataset(31);
    let (corrected, stats) = correct_dataset(&ds.reads, &params());
    let report = AccuracyReport::score_dataset(&ds.reads, &corrected, &ds.truth);
    assert!(stats.errors_corrected > 500, "corrected {}", stats.errors_corrected);
    assert!(
        report.gain() > 0.35,
        "gain {:.3} (TP {}, FP {}, FN {})",
        report.gain(),
        report.true_positives,
        report.false_positives,
        report.false_negatives
    );
    assert!(report.sensitivity() > 0.35, "sensitivity {:.3}", report.sensitivity());
    assert!(
        report.specificity() > 0.9995,
        "must not corrupt correct bases: {:.6}",
        report.specificity()
    );
}

#[test]
fn stricter_quality_threshold_reduces_false_positives() {
    let ds = well_covered_dataset(32);
    let lenient = ReptileParams { q_threshold: 30, ..params() };
    let strict = ReptileParams { q_threshold: 12, relax_quality: false, ..params() };
    let (c_len, _) = correct_dataset(&ds.reads, &lenient);
    let (c_str, _) = correct_dataset(&ds.reads, &strict);
    let r_len = AccuracyReport::score_dataset(&ds.reads, &c_len, &ds.truth);
    let r_str = AccuracyReport::score_dataset(&ds.reads, &c_str, &ds.truth);
    // strict mode attempts fewer positions → fewer FPs, fewer TPs
    assert!(r_str.false_positives <= r_len.false_positives);
    assert!(r_str.true_positives <= r_len.true_positives);
}

#[test]
fn hotspots_cause_imbalance_and_balancing_fixes_it() {
    let ds = well_covered_dataset(33);
    let p = params();
    let np = 64;
    let imb_cfg = EngineConfig {
        heuristics: HeuristicConfig { load_balance: false, ..Default::default() },
        ..EngineConfig::virtual_cluster(np, p)
    };
    let bal_cfg = EngineConfig::virtual_cluster(np, p);
    let imb = run_virtual(&imb_cfg, &ds.reads);
    let bal = run_virtual(&bal_cfg, &ds.reads);
    // identical corrections, different schedules
    assert_eq!(imb.corrected, bal.corrected);
    let imb_ratio = imb.report.imbalance_ratio();
    let bal_ratio = bal.report.imbalance_ratio();
    assert!(
        imb_ratio > bal_ratio,
        "hotspot clustering must show up as imbalance: {imb_ratio:.2} vs {bal_ratio:.2}"
    );
    // the paper's headline: balancing cuts the makespan (Fig 4: ~2x)
    assert!(
        bal.report.correct_secs() < imb.report.correct_secs(),
        "balanced {:.3}s vs imbalanced {:.3}s",
        bal.report.correct_secs(),
        imb.report.correct_secs()
    );
    // per-rank errors corrected: spread shrinks with balancing
    let spread = |r: &reptile_dist::RunReport| {
        let errs: Vec<u64> = r.ranks.iter().map(|x| x.correction.errors_corrected).collect();
        (*errs.iter().max().unwrap() as f64) / (*errs.iter().min().unwrap() as f64).max(1.0)
    };
    assert!(spread(&bal.report) < spread(&imb.report));
}

#[test]
fn remote_tile_misses_dominate_comm_traffic() {
    // The paper observes most communication time is tile lookups,
    // especially for tiles absent from the spectrum (error tiles).
    let ds = well_covered_dataset(34);
    let run = run_virtual(&EngineConfig::virtual_cluster(32, params()), &ds.reads);
    let rk: u64 = run.report.ranks.iter().map(|r| r.lookups.remote_kmer_lookups).sum();
    let rt: u64 = run.report.ranks.iter().map(|r| r.lookups.remote_tile_lookups).sum();
    let tile_misses: u64 = run.report.ranks.iter().map(|r| r.lookups.remote_tile_misses).sum();
    assert!(rt > rk, "tile lookups ({rt}) should outnumber k-mer lookups ({rk})");
    assert!(tile_misses > 0, "error tiles must miss the spectrum");
    assert!(
        tile_misses * 2 > rt,
        "most remote tile lookups are for absent tiles: {tile_misses}/{rt}"
    );
}

#[test]
fn memory_footprint_shrinks_with_rank_count() {
    // §V: "as the number of nodes is increased, the number of k-mers and
    // tiles per rank also decreases", e.g. <50 MB/rank for E.coli at 256
    // nodes.
    let ds = well_covered_dataset(35);
    let p = params();
    let mem_at = |np: usize| {
        run_virtual(&EngineConfig::virtual_cluster(np, p), &ds.reads).report.peak_memory_bytes()
    };
    let m16 = mem_at(16);
    let m256 = mem_at(256);
    assert!(m256 < m16, "per-rank memory must shrink: {m16} -> {m256}");
}
