//! Integration tests for the beyond-paper extensions: partial
//! replication, the prior-art engine, Bloom construction, the k-mer-only
//! baseline and sharded output — all exercised through the public API
//! against the same ground-truth dataset.

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, AccuracyReport, ReptileParams};
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::{run_distributed, run_prior_art, EngineConfig, HeuristicConfig, PriorArtConfig};

fn dataset(seed: u64) -> genio::dataset::SyntheticDataset {
    DatasetProfile {
        name: "ext".into(),
        genome_len: 6_000,
        read_len: 70,
        n_reads: 2_400,
        base_error_rate: 0.006,
        hotspot_count: 3,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(seed)
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 11,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 3,
        ..ReptileParams::default()
    }
}

#[test]
fn partial_replication_all_engines_agree() {
    let ds = dataset(51);
    let p = params();
    let (seq, _) = correct_dataset(&ds.reads, &p);
    for g in [2usize, 4] {
        let heur = HeuristicConfig { partial_group: g, ..Default::default() };
        let mt = EngineConfig { heuristics: heur, ..EngineConfig::new(4, p) };
        let out = run_distributed(&mt, &ds.reads);
        assert_eq!(out.corrected, seq, "threaded g={g}");
        let v = EngineConfig { heuristics: heur, ..EngineConfig::virtual_cluster(64, p) };
        let virt = run_virtual(&v, &ds.reads);
        assert_eq!(virt.corrected, seq, "virtual g={g}");
    }
}

#[test]
fn partial_replication_reduces_messages_threaded() {
    let ds = dataset(52);
    let p = params();
    let base = run_distributed(&EngineConfig::new(6, p), &ds.reads);
    let mut cfg = EngineConfig::new(6, p);
    cfg.heuristics.partial_group = 3;
    let partial = run_distributed(&cfg, &ds.reads);
    let remote = |o: &reptile_dist::RunOutput| -> u64 {
        o.report.ranks.iter().map(|r| r.lookups.remote_total()).sum()
    };
    assert!(
        remote(&partial) < remote(&base),
        "groups of 3 of 6 ranks should roughly halve messages: {} vs {}",
        remote(&partial),
        remote(&base)
    );
}

#[test]
fn prior_art_engine_agrees_with_paper_engine() {
    let ds = dataset(53);
    let p = params();
    let paper = run_distributed(&EngineConfig::new(4, p), &ds.reads);
    let prior = run_prior_art(&PriorArtConfig::new(4, p), &ds.reads);
    assert_eq!(paper.corrected, prior.corrected);
    // and the prior art never messages during correction
    assert!(prior.report.ranks.iter().all(|r| r.lookups.remote_total() == 0));
}

#[test]
fn bloom_spectra_drive_identical_correction() {
    let ds = dataset(54);
    let p = params();
    let (exact_out, _) = correct_dataset(&ds.reads, &p);
    let occurrences: usize = ds.reads.iter().map(|r| r.len().saturating_sub(p.k - 1)).sum();
    let (mut bloomed, stats) = reptile::build_with_bloom(&ds.reads, &p, occurrences, 0.0001);
    assert!(stats.kmer_singletons_filtered > 0);
    let mut corrected = Vec::with_capacity(ds.reads.len());
    let mut stats_acc = reptile::CorrectionStats::default();
    for r in &ds.reads {
        let mut read = r.clone();
        let o = reptile::correct_read(&mut read, &mut bloomed, &p);
        stats_acc.absorb(&o);
        corrected.push(read);
    }
    // identical up to Bloom false positives; at fp=1e-4 demand exactness
    assert_eq!(corrected, exact_out);
    assert!(stats_acc.errors_corrected > 100);
}

#[test]
fn tile_corrector_beats_kmer_baseline_on_ground_truth() {
    // The tile advantage (§II-A) holds in the paper's coverage regime
    // (47–197X): tiles are sampled once per stride, so at low coverage
    // their counts starve against any threshold and the longer windows
    // lose more candidates than they disambiguate. Use ~70X here.
    let ds = DatasetProfile {
        name: "tiles".into(),
        genome_len: 6_000,
        read_len: 70,
        n_reads: 6_000,
        base_error_rate: 0.006,
        hotspot_count: 3,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0005,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(55);
    let p = params();
    let (tiles, _) = correct_dataset(&ds.reads, &p);
    let (kmers, _) = reptile::correct_dataset_kmers_only(&ds.reads, &p);
    let t = AccuracyReport::score_dataset(&ds.reads, &tiles, &ds.truth);
    let k = AccuracyReport::score_dataset(&ds.reads, &kmers, &ds.truth);
    assert!(
        t.gain() > k.gain(),
        "tiles {:.3} must beat k-mers-only {:.3} (§II-A)",
        t.gain(),
        k.gain()
    );
    assert!(t.false_positives < k.false_positives + 50);
}

#[test]
fn sharded_output_reconstructs_dataset() {
    use reptile_dist::output::{merge_shards, write_all_shards};
    let ds = dataset(56);
    let p = params();
    let np = 5;
    let out = run_distributed(&EngineConfig::new(np, p), &ds.reads);
    // shard by the rank that owns each read under load balancing
    let mut per_rank: Vec<Vec<dnaseq::Read>> = vec![Vec::new(); np];
    for r in &out.corrected {
        per_rank[r.owner(np)].push(r.clone());
    }
    let dir = std::env::temp_dir().join(format!("reptile-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    write_all_shards(&dir, "c", &per_rank).unwrap();
    let merged = dir.join("c.fa");
    let n = merge_shards(&dir, "c", np, &merged).unwrap();
    assert_eq!(n, ds.reads.len() as u64);
    // merged content equals the corrected output
    let text = std::fs::read_to_string(&merged).unwrap();
    let mut lines = text.lines();
    let first_hdr = lines.next().unwrap();
    assert_eq!(first_hdr, ">1");
    let first_seq = lines.next().unwrap();
    assert_eq!(first_seq.as_bytes(), &out.corrected[0].seq[..]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn histogram_threshold_is_usable_end_to_end() {
    // derive thresholds from the histogram, then correct with them
    let ds = dataset(57);
    let mut p = params();
    let unpruned = reptile::spectrum::LocalSpectra::build_unpruned(&ds.reads, &p);
    let hist = reptile::CountHistogram::of_kmers(&unpruned.kmers);
    if let Some(t) = hist.suggest_threshold() {
        assert!(t >= 2, "valley threshold {t}");
        p.kmer_threshold = t;
        p.tile_threshold = (t / 2).max(2);
    }
    let (corrected, stats) = correct_dataset(&ds.reads, &p);
    let rep = AccuracyReport::score_dataset(&ds.reads, &corrected, &ds.truth);
    assert!(stats.errors_corrected > 100);
    assert!(rep.gain() > 0.3, "gain {:.3} with derived thresholds", rep.gain());
}
