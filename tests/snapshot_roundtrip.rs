//! End-to-end spectrum-snapshot integration: build once with
//! `save_spectrum`, correct many times with `load_spectrum`, across both
//! engines and across rank counts (same-`np` zero-copy loads and
//! re-sharded loads), with the full typed-corruption matrix and the
//! erasure-coded lose-k repair grid (parity shards + `RecoveryPolicy`).

use genio::dataset::DatasetProfile;
use reptile::ReptileParams;
use reptile_dist::{
    try_run_distributed, try_run_virtual, ConfigError, EngineConfig, EngineError, RecoveryPolicy,
    RunOutput,
};
use specstore::{fnv1a, Manifest, ShardKind, SnapshotError, MANIFEST_NAME};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reptile-snap-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 4,
        ..ReptileParams::default()
    }
}

fn dataset() -> Vec<dnaseq::Read> {
    DatasetProfile {
        name: "snap".into(),
        genome_len: 3_000,
        read_len: 60,
        n_reads: 700,
        base_error_rate: 0.005,
        hotspot_count: 1,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(17)
    .reads
}

const ENGINES: [&str; 2] = ["mt", "virtual"];

fn cfg_for(engine: &str, np: usize) -> EngineConfig {
    match engine {
        "mt" => EngineConfig::new(np, params()),
        _ => EngineConfig::virtual_cluster(np, params()),
    }
}

fn run_engine(
    engine: &str,
    cfg: &EngineConfig,
    reads: &[dnaseq::Read],
) -> Result<RunOutput, EngineError> {
    match engine {
        "mt" => try_run_distributed(cfg, reads),
        _ => try_run_virtual(cfg, reads),
    }
}

/// The acceptance matrix: for np ∈ {1, 3, 4} on both engines, a run that
/// loads a snapshot (saved at the same np — zero-copy — or a different
/// one — re-sharded) must produce corrected reads bit-identical to a
/// fresh build at the loading np.
#[test]
fn loaded_correction_is_bit_identical_across_engines_and_np() {
    let reads = dataset();
    let nps = [1usize, 3, 4];
    for engine in ENGINES {
        let fresh: Vec<(usize, RunOutput)> = nps
            .iter()
            .map(|&np| (np, run_engine(engine, &cfg_for(engine, np), &reads).unwrap()))
            .collect();
        for (save_np, fresh_at_save) in &fresh {
            let dir = tempdir(&format!("{engine}-save{save_np}"));
            let mut save_cfg = cfg_for(engine, *save_np);
            save_cfg.save_spectrum = Some(dir.clone());
            let saved = run_engine(engine, &save_cfg, &reads).unwrap();
            assert_eq!(
                saved.corrected, fresh_at_save.corrected,
                "{engine}: saving a snapshot must not perturb correction (np={save_np})"
            );
            assert!(saved.report.snapshot_bytes_written() > 0, "{engine} np={save_np}");
            for (load_np, fresh_at_load) in &fresh {
                let mut load_cfg = cfg_for(engine, *load_np);
                load_cfg.load_spectrum = Some(dir.clone());
                let loaded = run_engine(engine, &load_cfg, &reads).unwrap();
                assert_eq!(
                    loaded.corrected, fresh_at_load.corrected,
                    "{engine}: snapshot np={save_np} loaded at np={load_np} must match fresh"
                );
                assert!(
                    loaded.report.snapshot_bytes_read() > 0,
                    "{engine} {save_np}->{load_np}: load must account its I/O"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The snapshot format is engine-neutral: shards written by the virtual
/// engine serve the threaded engine and vice versa (slot layouts may
/// differ — only the corrected output is contractual).
#[test]
fn snapshots_are_engine_portable() {
    let reads = dataset();
    let dir = tempdir("portable");
    let mut save_cfg = cfg_for("virtual", 4);
    save_cfg.save_spectrum = Some(dir.clone());
    run_engine("virtual", &save_cfg, &reads).unwrap();

    let fresh_mt = run_engine("mt", &cfg_for("mt", 3), &reads).unwrap();
    let mut load_cfg = cfg_for("mt", 3);
    load_cfg.load_spectrum = Some(dir.clone());
    let loaded = run_engine("mt", &load_cfg, &reads).unwrap();
    assert_eq!(loaded.corrected, fresh_mt.corrected);

    let mut back_cfg = cfg_for("virtual", 2);
    back_cfg.load_spectrum = Some(dir.clone());
    let back = run_engine("virtual", &back_cfg, &reads).unwrap();
    let fresh_v2 = run_engine("virtual", &cfg_for("virtual", 2), &reads).unwrap();
    assert_eq!(back.corrected, fresh_v2.corrected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Snapshot loads still compose with the heuristic matrix: the derived
/// side tables (read tables, replication, partial groups, aggregation)
/// are rebuilt from the loaded spectra and correction stays bit-identical.
#[test]
fn loaded_snapshot_composes_with_heuristics() {
    use reptile_dist::HeuristicConfig;
    let reads = dataset();
    let dir = tempdir("heur");
    let mut save_cfg = cfg_for("mt", 3);
    save_cfg.save_spectrum = Some(dir.clone());
    let fresh = run_engine("mt", &save_cfg, &reads).unwrap();
    let matrix = [
        HeuristicConfig { universal: true, ..Default::default() },
        HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
        HeuristicConfig::replicate_both(),
        HeuristicConfig { aggregate_lookups: true, ..Default::default() },
        HeuristicConfig { partial_group: 2, ..Default::default() },
    ];
    for heur in matrix {
        let mut cfg = cfg_for("mt", 3);
        cfg.heuristics = heur;
        cfg.load_spectrum = Some(dir.clone());
        let loaded = run_engine("mt", &cfg, &reads).unwrap();
        assert_eq!(loaded.corrected, fresh.corrected, "heur={}", heur.label());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both engines bracket snapshot I/O in `snapshot-save` / `snapshot-load`
/// trace spans and surface per-rank timings in the report.
#[test]
fn snapshot_runs_carry_trace_spans_and_timings() {
    let reads = dataset();
    for engine in ENGINES {
        let dir = tempdir(&format!("trace-{engine}"));
        let mut save_cfg = cfg_for(engine, 3);
        save_cfg.save_spectrum = Some(dir.clone());
        let saved = run_engine(engine, &save_cfg, &reads).unwrap();
        for r in &saved.report.ranks {
            let trace = r.trace.as_ref().expect("snapshot runs must carry a trace");
            assert!(
                trace.phase_duration_us("snapshot-save").is_some(),
                "{engine}: rank {} missing snapshot-save span",
                r.rank
            );
        }
        assert!(saved.report.snapshot_save_secs() >= 0.0);

        let mut load_cfg = cfg_for(engine, 3);
        load_cfg.load_spectrum = Some(dir.clone());
        let loaded = run_engine(engine, &load_cfg, &reads).unwrap();
        for r in &loaded.report.ranks {
            let trace = r.trace.as_ref().expect("snapshot runs must carry a trace");
            assert!(
                trace.phase_duration_us("snapshot-load").is_some(),
                "{engine}: rank {} missing snapshot-load span",
                r.rank
            );
        }
        // fresh (non-snapshot) runs stay lean: no trace attached
        let plain = run_engine(engine, &cfg_for(engine, 3), &reads).unwrap();
        assert!(plain.report.ranks.iter().all(|r| r.trace.is_none()), "{engine}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------
// corruption matrix
// ---------------------------------------------------------------------

/// The on-disk path of `(rank, kind)`'s data shard, resolved through the
/// manifest (file naming is the store's business, not the tests').
fn shard_path(dir: &Path, rank: usize, kind: ShardKind) -> PathBuf {
    let manifest = Manifest::read(dir).unwrap();
    dir.join(&manifest.shard(rank, kind).unwrap().file_name)
}

/// Build one pristine np=3 snapshot to corrupt copies of.
fn pristine_snapshot(reads: &[dnaseq::Read]) -> PathBuf {
    let dir = tempdir("pristine");
    let mut cfg = cfg_for("virtual", 3);
    cfg.save_spectrum = Some(dir.clone());
    run_engine("virtual", &cfg, reads).unwrap();
    dir
}

/// Copy a snapshot directory so each corruption starts from clean bytes.
fn clone_snapshot(src: &Path, tag: &str) -> PathBuf {
    let dst = tempdir(tag);
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// Flip/overwrite bytes at `offset` in `path`.
fn patch_file(path: &Path, offset: usize, bytes: &[u8]) {
    let mut data = std::fs::read(path).unwrap();
    data[offset..offset + bytes.len()].copy_from_slice(bytes);
    std::fs::write(path, data).unwrap();
}

/// Load a (corrupted) snapshot through the virtual engine and return the
/// typed snapshot error it must surface.
fn load_failure(dir: &Path, reads: &[dnaseq::Read], p: ReptileParams) -> SnapshotError {
    let mut cfg = EngineConfig::virtual_cluster(3, p);
    cfg.load_spectrum = Some(dir.to_path_buf());
    match run_engine("virtual", &cfg, reads) {
        Err(EngineError::Snapshot(e)) => e,
        Err(other) => panic!("expected a snapshot error, got {other}"),
        Ok(_) => panic!("corrupted snapshot must not load"),
    }
}

#[test]
fn every_corruption_class_is_typed() {
    let reads = dataset();
    let pristine = pristine_snapshot(&reads);
    let manifest = Manifest::read(&pristine).unwrap();
    let kmer0 = manifest.shard(0, ShardKind::Kmer).unwrap().file_name.clone();
    let tile2 = manifest.shard(2, ShardKind::Tile).unwrap().file_name.clone();

    // bad magic: stomp the leading magic bytes
    let dir = clone_snapshot(&pristine, "magic");
    patch_file(&dir.join(&kmer0), 0, b"XXXXXXXX");
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::BadMagic { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // version skew: format version bumped past ours
    let dir = clone_snapshot(&pristine, "version");
    patch_file(&dir.join(&kmer0), 8, &99u32.to_le_bytes());
    assert!(matches!(
        load_failure(&dir, &reads, params()),
        SnapshotError::VersionSkew { found: 99, .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();

    // checksum: a single flipped trailing byte
    let dir = clone_snapshot(&pristine, "checksum");
    let path = dir.join(&kmer0);
    let mut data = std::fs::read(&path).unwrap();
    *data.last_mut().unwrap() ^= 0xff;
    std::fs::write(&path, data).unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::Checksum { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // fingerprint mismatch: loading under different corrector parameters
    let dir = clone_snapshot(&pristine, "fingerprint");
    let other = ReptileParams { k: 12, tile_overlap: 6, ..params() };
    assert!(matches!(load_failure(&dir, &reads, other), SnapshotError::FingerprintMismatch { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // missing shard: a manifest-listed file deleted out from under us
    let dir = clone_snapshot(&pristine, "missing");
    std::fs::remove_file(dir.join(&tile2)).unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::MissingShard { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // manifest that isn't one at all: bad banner
    let dir = clone_snapshot(&pristine, "manifest-banner");
    std::fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::BadMagic { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // manifest with the right banner but a garbled body
    let dir = clone_snapshot(&pristine, "manifest-body");
    std::fs::write(dir.join(MANIFEST_NAME), "reptile-specstore v1\nnonsense without equals\n")
        .unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::Manifest { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // truncation via the fault plan's chop clause (virtual replay)
    let dir = clone_snapshot(&pristine, "chop-virtual");
    let mut cfg = cfg_for("virtual", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.fault = mpisim::FaultPlan::parse("chop=1:40").unwrap();
    match run_engine("virtual", &cfg, &reads) {
        Err(EngineError::Snapshot(SnapshotError::Truncated { .. })) => {}
        Err(other) => panic!("chop must surface Truncated, got {other}"),
        Ok(_) => panic!("chop must surface Truncated, run succeeded"),
    }
    std::fs::remove_dir_all(&dir).unwrap();

    std::fs::remove_dir_all(&pristine).unwrap();
}

/// The threaded engine's distributed abort: under a chop fault the rank
/// that hits the truncated shard reports `Truncated`, its peers agree to
/// abort, and the run surfaces the root cause — not a peer's
/// `PeerFailure` sentinel — without deadlocking.
#[test]
fn threaded_chop_aborts_with_the_root_cause() {
    let reads = dataset();
    let dir = tempdir("chop-mt");
    let mut save_cfg = cfg_for("mt", 3);
    save_cfg.save_spectrum = Some(dir.clone());
    run_engine("mt", &save_cfg, &reads).unwrap();

    let mut cfg = cfg_for("mt", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.fault = mpisim::FaultPlan::parse("chop=1:40").unwrap();
    match run_engine("mt", &cfg, &reads) {
        Err(EngineError::Snapshot(SnapshotError::Truncated { .. })) => {}
        Err(other) => panic!("expected the root-cause Truncated error, got {other}"),
        Ok(_) => panic!("expected the root-cause Truncated error, run succeeded"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// erasure-coded repair: the lose-k grid
// ---------------------------------------------------------------------

/// Parity width of the grid snapshots: every group survives up to two
/// lost shards, and losing three must fail typed.
const PARITY_M: usize = 2;

/// The damage classes the repair path must classify as "lost". Mixed
/// per-shard so one grid pass exercises `MissingShard`, `Truncated`, and
/// `Checksum` classification together.
#[derive(Clone, Copy)]
enum Damage {
    /// Manifest-listed file deleted.
    Delete,
    /// File cut below the header (interrupted write).
    Chop,
    /// Trailing byte flipped (bit-rot; on an empty shard this flips the
    /// stored checksum field instead — also classified corrupt).
    Flip,
}

fn inflict(path: &Path, damage: Damage) {
    match damage {
        Damage::Delete => std::fs::remove_file(path).unwrap(),
        Damage::Chop => {
            let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
            f.set_len(40).unwrap();
        }
        Damage::Flip => {
            let mut data = std::fs::read(path).unwrap();
            *data.last_mut().unwrap() ^= 0xff;
            std::fs::write(path, data).unwrap();
        }
    }
}

/// Save a parity-protected snapshot at `np` with `engine`, returning the
/// directory (the run's corrected output equals the fresh run's — proven
/// by `loaded_correction_is_bit_identical_across_engines_and_np`).
fn save_parity_snapshot(
    engine: &str,
    np: usize,
    parity: usize,
    reads: &[dnaseq::Read],
    tag: &str,
) -> PathBuf {
    let dir = tempdir(tag);
    let mut cfg = cfg_for(engine, np);
    cfg.save_spectrum = Some(dir.clone());
    cfg.parity = parity;
    run_engine(engine, &cfg, reads).unwrap();
    dir
}

struct RepairRow {
    engine: &'static str,
    np: usize,
    kind: ShardKind,
    lost: usize,
    repaired: u64,
    outcome: &'static str,
}

fn write_repair_report(rows: &[RepairRow]) {
    let mut json = String::from("{\n  \"parity\": 2,\n  \"repair_matrix\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"np\": {}, \"kind\": \"{}\", \"lost\": {}, \
             \"shards_repaired\": {}, \"outcome\": \"{}\"}}{}",
            r.engine,
            r.np,
            r.kind,
            r.lost,
            r.repaired,
            r.outcome,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/repair-matrix-report.json", json).expect("write repair-matrix report");
}

/// One grid cell: save with parity, damage `k` shards of `kind`, load
/// under `Repair { max_lost: PARITY_M }`. Returns the report row after
/// asserting the cell's contract: k ≤ m reconstructs bit-identically,
/// k > m fails with `TooManyLost` (never a hang, never garbage).
fn repair_cell(
    engine: &'static str,
    np: usize,
    kind: ShardKind,
    k: usize,
    reads: &[dnaseq::Read],
    fresh: &RunOutput,
) -> RepairRow {
    let dir = save_parity_snapshot(
        engine,
        np,
        PARITY_M,
        reads,
        &format!("grid-{engine}-{np}-{kind}-{k}"),
    );
    let modes = [Damage::Delete, Damage::Chop, Damage::Flip];
    for i in 0..k {
        inflict(&shard_path(&dir, i, kind), modes[i % modes.len()]);
    }
    let mut cfg = cfg_for(engine, np);
    cfg.load_spectrum = Some(dir.clone());
    cfg.recovery = RecoveryPolicy::Repair { max_lost: PARITY_M, rewrite: false };
    let label = format!("{engine} np={np} {kind} k={k}");
    let row = match run_engine(engine, &cfg, reads) {
        Ok(out) => {
            assert!(k <= PARITY_M, "{label}: {k} lost shards must exceed the budget");
            assert_eq!(
                out.corrected, fresh.corrected,
                "{label}: repaired load must stay bit-identical"
            );
            let repaired = out.report.shards_repaired();
            if k == 0 {
                assert_eq!(repaired, 0, "{label}: clean load must not repair");
            } else {
                assert!(repaired >= k as u64, "{label}: repaired {repaired} < lost {k}");
                assert!(out.report.repair_bytes() > 0, "{label}: no bytes reconstructed");
            }
            let outcome = if k == 0 { "clean" } else { "repaired" };
            RepairRow { engine, np, kind, lost: k, repaired, outcome }
        }
        Err(EngineError::Snapshot(SnapshotError::TooManyLost { lost, budget, .. })) => {
            assert!(k > PARITY_M, "{label}: repairable loss surfaced TooManyLost");
            assert!(lost > budget, "{label}: lost {lost} within budget {budget}");
            RepairRow { engine, np, kind, lost: k, repaired: 0, outcome: "too_many_lost" }
        }
        Err(other) => panic!("{label}: expected success or TooManyLost, got {other}"),
    };
    std::fs::remove_dir_all(&dir).unwrap();
    row
}

/// The lose-k acceptance grid: k ∈ 0..=m+1 damaged shards (mixed
/// delete/chop/flip) × both table kinds × np ∈ {3, 4} × both engines.
/// Every k ≤ m cell reconstructs bit-identically; every k = m+1 cell
/// fails with the typed budget error. Release CI (`repair-matrix` job)
/// runs the full grid and uploads `target/repair-matrix-report.json`.
#[test]
#[cfg_attr(debug_assertions, ignore = "32-cell grid; run in release (CI repair-matrix job)")]
fn lose_k_grid_repairs_within_budget_and_fails_typed_beyond() {
    let reads = dataset();
    let mut rows = Vec::new();
    for engine in ENGINES {
        for np in [3usize, 4] {
            let fresh = run_engine(engine, &cfg_for(engine, np), &reads).unwrap();
            for kind in [ShardKind::Kmer, ShardKind::Tile] {
                for k in 0..=PARITY_M + 1 {
                    rows.push(repair_cell(engine, np, kind, k, &reads, &fresh));
                }
            }
        }
    }
    write_repair_report(&rows);
}

/// Debug-build smoke slice of the grid: one repairable and one
/// over-budget cell per engine.
#[test]
fn lose_k_smoke_repairs_and_rejects() {
    let reads = dataset();
    for engine in ENGINES {
        let fresh = run_engine(engine, &cfg_for(engine, 3), &reads).unwrap();
        repair_cell(engine, 3, ShardKind::Kmer, PARITY_M, &reads, &fresh);
        repair_cell(engine, 3, ShardKind::Tile, PARITY_M + 1, &reads, &fresh);
    }
}

/// `rewrite: true` repairs the snapshot on disk, not just in memory: a
/// later `Strict` load of the same directory succeeds.
#[test]
fn rewrite_heals_the_snapshot_in_place() {
    let reads = dataset();
    let dir = save_parity_snapshot("virtual", 3, 1, &reads, "rewrite");
    inflict(&shard_path(&dir, 1, ShardKind::Kmer), Damage::Flip);

    let mut cfg = cfg_for("virtual", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.recovery = RecoveryPolicy::Repair { max_lost: 1, rewrite: true };
    let repaired = run_engine("virtual", &cfg, &reads).unwrap();
    assert!(repaired.report.shards_repaired() >= 1);

    // the flip is gone from disk: strict readers accept the directory
    let mut strict = cfg_for("virtual", 3);
    strict.load_spectrum = Some(dir.clone());
    let reloaded = run_engine("virtual", &strict, &reads).unwrap();
    assert_eq!(reloaded.corrected, repaired.corrected);
    assert_eq!(reloaded.report.shards_repaired(), 0, "rewrite must leave nothing to repair");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The PR-4 fault plan composes with repair: a `chop=` clause truncates
/// a shard mid-load, and a `Repair` policy reconstructs it instead of
/// aborting — on both engines, bit-identical to the clean run.
#[test]
fn chop_fault_plus_repair_policy_recovers_on_both_engines() {
    let reads = dataset();
    for engine in ENGINES {
        let fresh = run_engine(engine, &cfg_for(engine, 3), &reads).unwrap();
        let dir = save_parity_snapshot(engine, 3, 1, &reads, &format!("chop-repair-{engine}"));
        let mut cfg = cfg_for(engine, 3);
        cfg.load_spectrum = Some(dir.clone());
        cfg.fault = mpisim::FaultPlan::parse("chop=1:40").unwrap();
        cfg.recovery = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let out = run_engine(engine, &cfg, &reads)
            .unwrap_or_else(|e| panic!("{engine}: chop+repair must recover, got {e}"));
        assert_eq!(out.corrected, fresh.corrected, "{engine}: chop+repair output");
        assert!(out.report.shards_repaired() >= 1, "{engine}: chop must trigger a repair");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------
// format-v1 compatibility and policy/format mismatches
// ---------------------------------------------------------------------

/// Rewrite a parity-free v2 snapshot as the v1 format this crate's
/// earlier releases wrote: v1 manifest banner, no `parity=` line, and
/// format version 1 in every shard header (checksums re-sealed, since
/// the digest covers the version field).
fn downgrade_to_v1(dir: &Path) {
    let mut manifest = Manifest::read(dir).unwrap();
    assert_eq!(manifest.parity, 0, "only parity-free snapshots can be v1");
    for rec in &mut manifest.shards {
        let path = dir.join(&rec.file_name);
        let mut data = std::fs::read(&path).unwrap();
        data[8..12].copy_from_slice(&1u32.to_le_bytes());
        data[92..100].copy_from_slice(&[0u8; 8]);
        let sum = fnv1a(&data);
        data[92..100].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        rec.checksum = sum;
    }
    let text = manifest.render().replace("reptile-specstore v2", "reptile-specstore v1");
    let text: String =
        text.lines().filter(|l| !l.starts_with("parity=")).fold(String::new(), |mut acc, line| {
            acc.push_str(line);
            acc.push('\n');
            acc
        });
    std::fs::write(Manifest::path_in(dir), text).unwrap();
}

/// A v1 (pre-parity) snapshot still loads bit-identically under `Strict`
/// on both engines, and asking it for repair is the typed configuration
/// error — not a crash in the parity reader.
#[test]
fn v1_snapshot_loads_strict_and_rejects_repair() {
    let reads = dataset();
    let dir = tempdir("v1-compat");
    let mut save_cfg = cfg_for("virtual", 3);
    save_cfg.save_spectrum = Some(dir.clone());
    run_engine("virtual", &save_cfg, &reads).unwrap();
    downgrade_to_v1(&dir);

    for engine in ENGINES {
        let fresh = run_engine(engine, &cfg_for(engine, 3), &reads).unwrap();
        let mut cfg = cfg_for(engine, 3);
        cfg.load_spectrum = Some(dir.clone());
        let loaded = run_engine(engine, &cfg, &reads)
            .unwrap_or_else(|e| panic!("{engine}: v1 snapshot must load under Strict, got {e}"));
        assert_eq!(loaded.corrected, fresh.corrected, "{engine}: v1 strict load");
        assert_eq!(loaded.report.shards_repaired(), 0, "{engine}");
    }

    let mut cfg = cfg_for("virtual", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.recovery = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
    match run_engine("virtual", &cfg, &reads) {
        Err(EngineError::Config(ConfigError::RepairWithoutParity)) => {}
        Err(other) => panic!("expected RepairWithoutParity, got {other}"),
        Ok(_) => panic!("a v1 snapshot has no parity to repair from"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A degraded snapshot still serves: `ServeEngine::start` under a
/// `Repair` policy reconstructs the damaged shard during its one load,
/// reports the repair in `ServeReport`, and the served corrections match
/// a fresh batch run.
#[test]
fn serve_engine_starts_degraded_and_reports_the_repair() {
    use reptile_dist::{ServeConfig, ServeEngine, SubmitError};
    let reads = dataset();
    let fresh = run_engine("mt", &cfg_for("mt", 3), &reads).unwrap();
    let dir = save_parity_snapshot("mt", 3, 1, &reads, "serve-degraded");
    inflict(&shard_path(&dir, 0, ShardKind::Kmer), Damage::Chop);

    let mut cfg = cfg_for("mt", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.recovery = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
    let engine = ServeEngine::start(cfg, ServeConfig::default(), Vec::new()).unwrap();

    let total = reads.len();
    let mut responses = Vec::with_capacity(total);
    for read in reads.clone() {
        let trace_id = read.id;
        let mut pending = read;
        loop {
            match engine.submit(trace_id, pending) {
                Ok(()) => break,
                Err(SubmitError::Backpressure { read, retry_after, .. }) => {
                    responses.append(&mut engine.drain());
                    std::thread::sleep(retry_after);
                    pending = read;
                }
                Err(SubmitError::Closed(_)) => panic!("serve engine closed early"),
            }
        }
    }
    while responses.len() < total {
        responses.append(&mut engine.drain());
    }
    let report = engine.shutdown().unwrap();
    assert!(report.repair.shards_repaired >= 1, "degraded start must report its reconstruction");
    assert!(report.repair.bytes_reconstructed > 0);

    responses.sort_unstable_by_key(|r| r.read.id);
    let served: Vec<Vec<u8>> = responses.into_iter().map(|r| r.read.seq).collect();
    let want: Vec<Vec<u8>> = fresh.corrected.iter().map(|r| r.seq.clone()).collect();
    assert_eq!(served, want, "degraded serve must correct identically");
    std::fs::remove_dir_all(&dir).unwrap();
}
