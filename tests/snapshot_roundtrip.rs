//! End-to-end spectrum-snapshot integration: build once with
//! `save_spectrum`, correct many times with `load_spectrum`, across both
//! engines and across rank counts (same-`np` zero-copy loads and
//! re-sharded loads), with the full typed-corruption matrix.

use genio::dataset::DatasetProfile;
use reptile::ReptileParams;
use reptile_dist::{try_run_distributed, try_run_virtual, EngineConfig, EngineError, RunOutput};
use specstore::{shard_file_name, ShardKind, SnapshotError, MANIFEST_NAME};
use std::path::{Path, PathBuf};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reptile-snap-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params() -> ReptileParams {
    ReptileParams {
        k: 10,
        tile_overlap: 5,
        kmer_threshold: 4,
        tile_threshold: 4,
        ..ReptileParams::default()
    }
}

fn dataset() -> Vec<dnaseq::Read> {
    DatasetProfile {
        name: "snap".into(),
        genome_len: 3_000,
        read_len: 60,
        n_reads: 700,
        base_error_rate: 0.005,
        hotspot_count: 1,
        hotspot_multiplier: 5.0,
        hotspot_fraction: 0.1,
        both_strands: false,
        n_rate: 0.0,
        repeat_fraction: 0.0,
        repeat_unit_len: 0,
    }
    .generate(17)
    .reads
}

const ENGINES: [&str; 2] = ["mt", "virtual"];

fn cfg_for(engine: &str, np: usize) -> EngineConfig {
    match engine {
        "mt" => EngineConfig::new(np, params()),
        _ => EngineConfig::virtual_cluster(np, params()),
    }
}

fn run_engine(
    engine: &str,
    cfg: &EngineConfig,
    reads: &[dnaseq::Read],
) -> Result<RunOutput, EngineError> {
    match engine {
        "mt" => try_run_distributed(cfg, reads),
        _ => try_run_virtual(cfg, reads),
    }
}

/// The acceptance matrix: for np ∈ {1, 3, 4} on both engines, a run that
/// loads a snapshot (saved at the same np — zero-copy — or a different
/// one — re-sharded) must produce corrected reads bit-identical to a
/// fresh build at the loading np.
#[test]
fn loaded_correction_is_bit_identical_across_engines_and_np() {
    let reads = dataset();
    let nps = [1usize, 3, 4];
    for engine in ENGINES {
        let fresh: Vec<(usize, RunOutput)> = nps
            .iter()
            .map(|&np| (np, run_engine(engine, &cfg_for(engine, np), &reads).unwrap()))
            .collect();
        for (save_np, fresh_at_save) in &fresh {
            let dir = tempdir(&format!("{engine}-save{save_np}"));
            let mut save_cfg = cfg_for(engine, *save_np);
            save_cfg.save_spectrum = Some(dir.clone());
            let saved = run_engine(engine, &save_cfg, &reads).unwrap();
            assert_eq!(
                saved.corrected, fresh_at_save.corrected,
                "{engine}: saving a snapshot must not perturb correction (np={save_np})"
            );
            assert!(saved.report.snapshot_bytes_written() > 0, "{engine} np={save_np}");
            for (load_np, fresh_at_load) in &fresh {
                let mut load_cfg = cfg_for(engine, *load_np);
                load_cfg.load_spectrum = Some(dir.clone());
                let loaded = run_engine(engine, &load_cfg, &reads).unwrap();
                assert_eq!(
                    loaded.corrected, fresh_at_load.corrected,
                    "{engine}: snapshot np={save_np} loaded at np={load_np} must match fresh"
                );
                assert!(
                    loaded.report.snapshot_bytes_read() > 0,
                    "{engine} {save_np}->{load_np}: load must account its I/O"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The snapshot format is engine-neutral: shards written by the virtual
/// engine serve the threaded engine and vice versa (slot layouts may
/// differ — only the corrected output is contractual).
#[test]
fn snapshots_are_engine_portable() {
    let reads = dataset();
    let dir = tempdir("portable");
    let mut save_cfg = cfg_for("virtual", 4);
    save_cfg.save_spectrum = Some(dir.clone());
    run_engine("virtual", &save_cfg, &reads).unwrap();

    let fresh_mt = run_engine("mt", &cfg_for("mt", 3), &reads).unwrap();
    let mut load_cfg = cfg_for("mt", 3);
    load_cfg.load_spectrum = Some(dir.clone());
    let loaded = run_engine("mt", &load_cfg, &reads).unwrap();
    assert_eq!(loaded.corrected, fresh_mt.corrected);

    let mut back_cfg = cfg_for("virtual", 2);
    back_cfg.load_spectrum = Some(dir.clone());
    let back = run_engine("virtual", &back_cfg, &reads).unwrap();
    let fresh_v2 = run_engine("virtual", &cfg_for("virtual", 2), &reads).unwrap();
    assert_eq!(back.corrected, fresh_v2.corrected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Snapshot loads still compose with the heuristic matrix: the derived
/// side tables (read tables, replication, partial groups, aggregation)
/// are rebuilt from the loaded spectra and correction stays bit-identical.
#[test]
fn loaded_snapshot_composes_with_heuristics() {
    use reptile_dist::HeuristicConfig;
    let reads = dataset();
    let dir = tempdir("heur");
    let mut save_cfg = cfg_for("mt", 3);
    save_cfg.save_spectrum = Some(dir.clone());
    let fresh = run_engine("mt", &save_cfg, &reads).unwrap();
    let matrix = [
        HeuristicConfig { universal: true, ..Default::default() },
        HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
        HeuristicConfig::replicate_both(),
        HeuristicConfig { aggregate_lookups: true, ..Default::default() },
        HeuristicConfig { partial_group: 2, ..Default::default() },
    ];
    for heur in matrix {
        let mut cfg = cfg_for("mt", 3);
        cfg.heuristics = heur;
        cfg.load_spectrum = Some(dir.clone());
        let loaded = run_engine("mt", &cfg, &reads).unwrap();
        assert_eq!(loaded.corrected, fresh.corrected, "heur={}", heur.label());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both engines bracket snapshot I/O in `snapshot-save` / `snapshot-load`
/// trace spans and surface per-rank timings in the report.
#[test]
fn snapshot_runs_carry_trace_spans_and_timings() {
    let reads = dataset();
    for engine in ENGINES {
        let dir = tempdir(&format!("trace-{engine}"));
        let mut save_cfg = cfg_for(engine, 3);
        save_cfg.save_spectrum = Some(dir.clone());
        let saved = run_engine(engine, &save_cfg, &reads).unwrap();
        for r in &saved.report.ranks {
            let trace = r.trace.as_ref().expect("snapshot runs must carry a trace");
            assert!(
                trace.phase_duration_us("snapshot-save").is_some(),
                "{engine}: rank {} missing snapshot-save span",
                r.rank
            );
        }
        assert!(saved.report.snapshot_save_secs() >= 0.0);

        let mut load_cfg = cfg_for(engine, 3);
        load_cfg.load_spectrum = Some(dir.clone());
        let loaded = run_engine(engine, &load_cfg, &reads).unwrap();
        for r in &loaded.report.ranks {
            let trace = r.trace.as_ref().expect("snapshot runs must carry a trace");
            assert!(
                trace.phase_duration_us("snapshot-load").is_some(),
                "{engine}: rank {} missing snapshot-load span",
                r.rank
            );
        }
        // fresh (non-snapshot) runs stay lean: no trace attached
        let plain = run_engine(engine, &cfg_for(engine, 3), &reads).unwrap();
        assert!(plain.report.ranks.iter().all(|r| r.trace.is_none()), "{engine}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------
// corruption matrix
// ---------------------------------------------------------------------

/// Build one pristine np=3 snapshot to corrupt copies of.
fn pristine_snapshot(reads: &[dnaseq::Read]) -> PathBuf {
    let dir = tempdir("pristine");
    let mut cfg = cfg_for("virtual", 3);
    cfg.save_spectrum = Some(dir.clone());
    run_engine("virtual", &cfg, reads).unwrap();
    dir
}

/// Copy a snapshot directory so each corruption starts from clean bytes.
fn clone_snapshot(src: &Path, tag: &str) -> PathBuf {
    let dst = tempdir(tag);
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// Flip/overwrite bytes at `offset` in `path`.
fn patch_file(path: &Path, offset: usize, bytes: &[u8]) {
    let mut data = std::fs::read(path).unwrap();
    data[offset..offset + bytes.len()].copy_from_slice(bytes);
    std::fs::write(path, data).unwrap();
}

/// Load a (corrupted) snapshot through the virtual engine and return the
/// typed snapshot error it must surface.
fn load_failure(dir: &Path, reads: &[dnaseq::Read], p: ReptileParams) -> SnapshotError {
    let mut cfg = EngineConfig::virtual_cluster(3, p);
    cfg.load_spectrum = Some(dir.to_path_buf());
    match run_engine("virtual", &cfg, reads) {
        Err(EngineError::Snapshot(e)) => e,
        Err(other) => panic!("expected a snapshot error, got {other}"),
        Ok(_) => panic!("corrupted snapshot must not load"),
    }
}

#[test]
fn every_corruption_class_is_typed() {
    let reads = dataset();
    let pristine = pristine_snapshot(&reads);
    let kmer0 = shard_file_name(0, ShardKind::Kmer);
    let tile2 = shard_file_name(2, ShardKind::Tile);

    // bad magic: stomp the leading magic bytes
    let dir = clone_snapshot(&pristine, "magic");
    patch_file(&dir.join(&kmer0), 0, b"XXXXXXXX");
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::BadMagic { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // version skew: format version bumped past ours
    let dir = clone_snapshot(&pristine, "version");
    patch_file(&dir.join(&kmer0), 8, &99u32.to_le_bytes());
    assert!(matches!(
        load_failure(&dir, &reads, params()),
        SnapshotError::VersionSkew { found: 99, .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();

    // checksum: a single flipped trailing byte
    let dir = clone_snapshot(&pristine, "checksum");
    let path = dir.join(&kmer0);
    let mut data = std::fs::read(&path).unwrap();
    *data.last_mut().unwrap() ^= 0xff;
    std::fs::write(&path, data).unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::Checksum { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // fingerprint mismatch: loading under different corrector parameters
    let dir = clone_snapshot(&pristine, "fingerprint");
    let other = ReptileParams { k: 12, tile_overlap: 6, ..params() };
    assert!(matches!(load_failure(&dir, &reads, other), SnapshotError::FingerprintMismatch { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // missing shard: a manifest-listed file deleted out from under us
    let dir = clone_snapshot(&pristine, "missing");
    std::fs::remove_file(dir.join(&tile2)).unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::MissingShard { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // manifest that isn't one at all: bad banner
    let dir = clone_snapshot(&pristine, "manifest-banner");
    std::fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::BadMagic { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // manifest with the right banner but a garbled body
    let dir = clone_snapshot(&pristine, "manifest-body");
    std::fs::write(dir.join(MANIFEST_NAME), "reptile-specstore v1\nnonsense without equals\n")
        .unwrap();
    assert!(matches!(load_failure(&dir, &reads, params()), SnapshotError::Manifest { .. }));
    std::fs::remove_dir_all(&dir).unwrap();

    // truncation via the fault plan's chop clause (virtual replay)
    let dir = clone_snapshot(&pristine, "chop-virtual");
    let mut cfg = cfg_for("virtual", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.fault = mpisim::FaultPlan::parse("chop=1:40").unwrap();
    match run_engine("virtual", &cfg, &reads) {
        Err(EngineError::Snapshot(SnapshotError::Truncated { .. })) => {}
        Err(other) => panic!("chop must surface Truncated, got {other}"),
        Ok(_) => panic!("chop must surface Truncated, run succeeded"),
    }
    std::fs::remove_dir_all(&dir).unwrap();

    std::fs::remove_dir_all(&pristine).unwrap();
}

/// The threaded engine's distributed abort: under a chop fault the rank
/// that hits the truncated shard reports `Truncated`, its peers agree to
/// abort, and the run surfaces the root cause — not a peer's
/// `PeerFailure` sentinel — without deadlocking.
#[test]
fn threaded_chop_aborts_with_the_root_cause() {
    let reads = dataset();
    let dir = tempdir("chop-mt");
    let mut save_cfg = cfg_for("mt", 3);
    save_cfg.save_spectrum = Some(dir.clone());
    run_engine("mt", &save_cfg, &reads).unwrap();

    let mut cfg = cfg_for("mt", 3);
    cfg.load_spectrum = Some(dir.clone());
    cfg.fault = mpisim::FaultPlan::parse("chop=1:40").unwrap();
    match run_engine("mt", &cfg, &reads) {
        Err(EngineError::Snapshot(SnapshotError::Truncated { .. })) => {}
        Err(other) => panic!("expected the root-cause Truncated error, got {other}"),
        Ok(_) => panic!("expected the root-cause Truncated error, run succeeded"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
