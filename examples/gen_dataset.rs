//! Write a deterministic synthetic dataset as the (numbered FASTA,
//! quality) file pair Reptile consumes — the fixture generator for
//! scripted CLI runs (CI's snapshot-roundtrip job).
//!
//! ```text
//! cargo run --release --example gen_dataset -- <out.fa> <out.qual> [scale] [seed]
//! ```
//!
//! `scale` divides the E.coli-like profile (default 2000, ~4400 reads);
//! `seed` defaults to 7. The same arguments always produce byte-identical
//! files.

use genio::dataset::DatasetProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fasta, qual) = match (args.first(), args.get(1)) {
        (Some(f), Some(q)) => (f.clone(), q.clone()),
        _ => return Err("usage: gen_dataset <out.fa> <out.qual> [scale] [seed]".into()),
    };
    let scale: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(2000);
    let seed: u64 = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(7);
    let dataset = DatasetProfile::ecoli_like().scaled(scale).generate(seed);
    dataset.write_files(fasta.as_ref(), qual.as_ref())?;
    println!(
        "wrote {} reads x {} bp to {fasta} (+ {qual})",
        dataset.reads.len(),
        dataset.reads.first().map_or(0, |r| r.seq.len()),
    );
    Ok(())
}
