//! Tour of the paper's execution-mode heuristics (§III-B).
//!
//! ```text
//! cargo run --release --example heuristics_tour
//! ```
//!
//! Runs the same dataset through every heuristic combination the paper
//! evaluates in Fig 5 — on the *threaded* engine (real messages between 8
//! ranks) — and prints what each mode trades: remote lookups vs resident
//! table entries vs collective rounds. Output correctness is asserted
//! against the sequential baseline for every mode.

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, ReptileParams};
use reptile_dist::{run_distributed, EngineConfig, HeuristicConfig};

fn main() {
    let dataset = DatasetProfile::ecoli_like().scaled(4000).generate(11);
    let params = ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        tile_threshold: 5,
        ..ReptileParams::default()
    };
    let (baseline, _) = correct_dataset(&dataset.reads, &params);

    let modes: Vec<HeuristicConfig> = vec![
        HeuristicConfig::base(),
        HeuristicConfig { universal: true, ..Default::default() },
        HeuristicConfig { keep_read_tables: true, ..Default::default() },
        HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
        HeuristicConfig { replicate_kmers: true, ..Default::default() },
        HeuristicConfig { replicate_tiles: true, ..Default::default() },
        HeuristicConfig::replicate_both(),
        HeuristicConfig { batch_reads: true, ..Default::default() },
        HeuristicConfig::paper_production(),
        HeuristicConfig { load_balance: false, ..Default::default() },
    ];

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "mode", "remoteK", "remoteT", "served", "mem_MiB", "batches"
    );
    for heur in modes {
        let cfg = EngineConfig {
            np: 8,
            chunk_size: 250,
            params,
            heuristics: heur,
            ..EngineConfig::new(8, params)
        };
        let out = run_distributed(&cfg, &dataset.reads);
        assert_eq!(out.corrected, baseline, "mode {} altered the output", heur.label());
        let rk: u64 = out.report.ranks.iter().map(|r| r.lookups.remote_kmer_lookups).sum();
        let rt: u64 = out.report.ranks.iter().map(|r| r.lookups.remote_tile_lookups).sum();
        let served: u64 = out.report.ranks.iter().map(|r| r.lookups.requests_served).sum();
        let mem = out.report.peak_memory_bytes() / (1024.0 * 1024.0);
        let batches = out.report.ranks.iter().map(|r| r.build.batches).max().unwrap_or(0);
        println!(
            "{:<28} {:>9} {:>9} {:>9} {:>10.1} {:>8}",
            heur.label(),
            rk,
            rt,
            served,
            mem,
            batches
        );
    }
    println!("\nall modes produced output identical to sequential Reptile ✓");
}
