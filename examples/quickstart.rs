//! Quickstart: correct a small synthetic read set three ways and check
//! they agree.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. generate an E.coli-flavoured synthetic dataset (known ground truth);
//! 2. correct it with sequential Reptile (the baseline);
//! 3. correct it with the distributed engine on 8 in-process MPI-like
//!    ranks (the paper's algorithm, spectra distributed by hash owner);
//! 4. assert the outputs are identical and report accuracy.

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, AccuracyReport, ReptileParams};
use reptile_dist::{run_distributed, EngineConfig};

fn main() {
    // A 1/2000-scale E.coli-like dataset: ~23 kbp genome, ~4.4 k reads.
    let profile = DatasetProfile::ecoli_like().scaled(2000);
    let dataset = profile.generate(42);
    println!(
        "dataset: {} reads x {} bp, genome {} bp, {:.0}X coverage, {} injected errors",
        dataset.reads.len(),
        profile.read_len,
        dataset.genome.len(),
        dataset.profile.coverage(),
        dataset.errors_injected
    );

    let params = ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        tile_threshold: 5,
        ..ReptileParams::default()
    };

    // --- sequential baseline ---
    let (seq_corrected, seq_stats) = correct_dataset(&dataset.reads, &params);
    println!(
        "sequential: corrected {} errors in {} reads",
        seq_stats.errors_corrected, seq_stats.reads_corrected
    );

    // --- distributed (8 ranks, real threads, real messages) ---
    let cfg = EngineConfig::new(8, params);
    let out = run_distributed(&cfg, &dataset.reads);
    let remote: u64 = out.report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
    println!(
        "distributed: 8 ranks, {} remote lookups, {} errors corrected",
        remote,
        out.report.errors_corrected()
    );

    assert_eq!(out.corrected, seq_corrected, "distributed output must equal sequential");
    println!("outputs identical across engines ✓");

    // --- accuracy vs ground truth ---
    let report = AccuracyReport::score_dataset(&dataset.reads, &seq_corrected, &dataset.truth);
    println!(
        "accuracy: gain {:.3}, sensitivity {:.3}, specificity {:.6}",
        report.gain(),
        report.sensitivity(),
        report.specificity()
    );
}
