//! Spectrum tooling: count histograms, automatic threshold selection and
//! Bloom-filtered construction.
//!
//! ```text
//! cargo run --release --example spectrum_tools
//! ```
//!
//! Shows the workflow a user follows before a big correction run:
//! inspect the k-mer count histogram, derive the frequency threshold from
//! its valley (instead of guessing the config value), then build the
//! spectra with the Bloom-filtered path the paper suggests for memory
//! (§III step III) and compare its footprint against the exact build.

use genio::dataset::DatasetProfile;
use reptile::spectrum::LocalSpectra;
use reptile::{build_with_bloom, CountHistogram, ReptileParams};

fn main() {
    let dataset = DatasetProfile::ecoli_like().scaled(2000).generate(99);
    let mut params = ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 2, // placeholder until the histogram speaks
        tile_threshold: 2,
        ..ReptileParams::default()
    };

    // 1. histogram of the unpruned spectrum
    let unpruned = LocalSpectra::build_unpruned(&dataset.reads, &params);
    let hist = CountHistogram::of_kmers(&unpruned.kmers);
    println!(
        "k-mer histogram: {} distinct codes, {} occurrences, max count {}",
        hist.distinct(),
        hist.occurrences(),
        hist.max_count()
    );
    println!(
        "first bins: 1:{} 2:{} 3:{} 4:{} 5:{}",
        hist.bin(1),
        hist.bin(2),
        hist.bin(3),
        hist.bin(4),
        hist.bin(5)
    );
    if let Some(valley) = hist.valley() {
        if let Some(peak) = hist.coverage_peak(valley) {
            println!("error tail bottoms out at count {valley}; coverage peak near count {peak}");
        }
    }

    // 2. derive the threshold from the valley
    match hist.suggest_threshold() {
        Some(t) => {
            println!("suggested threshold: {t} (valley between error and coverage peaks)");
            params.kmer_threshold = t;
            params.tile_threshold = t;
        }
        None => println!("histogram not bimodal; keeping configured thresholds"),
    }

    // 3. exact vs Bloom-filtered construction
    let exact = LocalSpectra::build(&dataset.reads, &params);
    let occurrences: usize =
        dataset.reads.iter().map(|r| r.len().saturating_sub(params.k - 1)).sum();
    let (bloomed, stats) = build_with_bloom(&dataset.reads, &params, occurrences, 0.001);
    println!("exact build:  {} k-mers, {} tiles retained", exact.kmers.len(), exact.tiles.len());
    println!(
        "bloom build:  {} k-mers, {} tiles retained; {} k-mer first-sightings \
         absorbed by a {:.1} MiB filter",
        bloomed.kmers.len(),
        bloomed.tiles.len(),
        stats.kmer_singletons_filtered,
        stats.filter_bytes as f64 / (1024.0 * 1024.0)
    );

    // 4. the two builds agree on every retained entry (mod rare FPs)
    let mut disagreements = 0usize;
    for (code, count) in exact.kmers.iter() {
        if bloomed.kmers.count(code) != count {
            disagreements += 1;
        }
    }
    println!(
        "spectra agreement: {disagreements} of {} entries differ (bloom false positives)",
        exact.kmers.len()
    );
}
