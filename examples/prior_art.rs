//! Prior art vs this paper, on real threads.
//!
//! ```text
//! cargo run --release --example prior_art
//! ```
//!
//! Runs the same dataset through (a) the replicated-spectrum engine with
//! a dynamic global master handing out chunks (Shah'12 / Jammula'15 —
//! the approaches §II-B contrasts), and (b) the paper's
//! distributed-spectrum engine with static load balancing, then compares
//! memory footprints, message counts and work distribution. Outputs are
//! asserted identical to the sequential baseline for both.

use genio::dataset::DatasetProfile;
use reptile::{correct_dataset, ReptileParams};
use reptile_dist::{run_distributed, run_prior_art, EngineConfig, PriorArtConfig};

fn main() {
    let dataset = DatasetProfile::ecoli_like().scaled(4000).generate(17);
    let params = ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        tile_threshold: 4,
        ..ReptileParams::default()
    };
    let (baseline, _) = correct_dataset(&dataset.reads, &params);
    let np = 6;

    println!("dataset: {} reads, {} ranks\n", dataset.reads.len(), np);

    // --- prior art: replicated spectra + dynamic master ---
    let mut pa_cfg = PriorArtConfig::new(np, params);
    pa_cfg.chunk_size = 100;
    let pa = run_prior_art(&pa_cfg, &dataset.reads);
    assert_eq!(pa.corrected, baseline, "prior-art output must equal sequential");
    println!("replicated + dynamic master (prior art):");
    print_summary(&pa.report);

    // --- this paper: distributed spectra + static balancing ---
    let cfg = EngineConfig { chunk_size: 100, ..EngineConfig::new(np, params) };
    let dist = run_distributed(&cfg, &dataset.reads);
    assert_eq!(dist.corrected, baseline, "distributed output must equal sequential");
    println!("\ndistributed + static balancing (this paper):");
    print_summary(&dist.report);

    let pa_mem = pa.report.peak_memory_bytes();
    let dist_mem = dist.report.peak_memory_bytes();
    println!(
        "\nmemory ratio (prior art / this paper): {:.1}x — the footprint the paper eliminates",
        pa_mem / dist_mem
    );
}

fn print_summary(report: &reptile_dist::RunReport) {
    let remote: u64 = report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
    let reads: Vec<u64> = report.ranks.iter().map(|r| r.reads_processed).collect();
    println!(
        "  errors corrected {:>6}   remote lookups {:>9}   peak memory {:>7.1} MiB",
        report.errors_corrected(),
        remote,
        report.peak_memory_bytes() / (1024.0 * 1024.0)
    );
    println!("  reads per rank: {reads:?}");
}
