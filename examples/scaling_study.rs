//! Strong-scaling study on the virtual cluster (the paper's Figs 6–8
//! methodology at example scale).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```
//!
//! Sweeps the rank count from 64 to 4096 (32 ranks/node, BG/Q cost
//! model), with and without static load balancing, and prints the scaling
//! series: modeled construction/correction seconds, communication share,
//! imbalance ratio and parallel efficiency. A second sweep replays the
//! same rank counts from a persisted spectrum snapshot (`load_spectrum`),
//! comparing the modeled snapshot-load time against rebuilding Steps
//! II–III from the reads — the build-once / correct-many mode.

use genio::dataset::DatasetProfile;
use mpisim::Topology;
use reptile::ReptileParams;
use reptile_dist::engine_virtual::run_virtual;
use reptile_dist::EngineConfig;
use reptile_dist::HeuristicConfig;

fn main() {
    let dataset = DatasetProfile::ecoli_like().scaled(1000).generate(3);
    println!(
        "workload: {} reads x 102 bp (E.coli/1000), BG/Q cost model, 32 ranks/node\n",
        dataset.reads.len()
    );
    let params = ReptileParams {
        k: 12,
        tile_overlap: 6,
        kmer_threshold: 5,
        tile_threshold: 5,
        ..ReptileParams::default()
    };

    println!(
        "{:>6} {:>6} {:>12} {:>11} {:>9} {:>11} {:>10}",
        "ranks", "nodes", "construct_s", "correct_s", "comm_pct", "imbalanced", "imb_ratio"
    );
    let mut first: Option<(usize, f64)> = None;
    let mut last: Option<(usize, f64)> = None;
    for np in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let cfg = EngineConfig {
            topology: Topology::new(32),
            ..EngineConfig::virtual_cluster(np, params)
        };
        let balanced = run_virtual(&cfg, &dataset.reads);
        let imb_cfg = EngineConfig {
            heuristics: HeuristicConfig { load_balance: false, ..Default::default() },
            ..cfg
        };
        let imbalanced = run_virtual(&imb_cfg, &dataset.reads);

        let total = balanced.report.makespan_secs();
        let comm_max = balanced.report.ranks.iter().map(|r| r.comm_secs).fold(0.0, f64::max);
        let comm_pct = 100.0 * comm_max / balanced.report.correct_secs().max(1e-12);
        println!(
            "{:>6} {:>6} {:>12.2} {:>11.2} {:>8.0}% {:>11.2} {:>10.2}",
            np,
            np / 32,
            balanced.report.construct_secs(),
            balanced.report.correct_secs(),
            comm_pct,
            imbalanced.report.correct_secs(),
            imbalanced.report.imbalance_ratio(),
        );
        if first.is_none() {
            first = Some((np, total));
        }
        last = Some((np, total));
    }
    let (np0, t0) = first.unwrap();
    let (np1, t1) = last.unwrap();
    let efficiency = (t0 * np0 as f64) / (t1 * np1 as f64);
    println!(
        "\nparallel efficiency {np0} → {np1} ranks: {efficiency:.2} \
         (the paper reports 0.81 for E.coli at 8192 ranks)"
    );

    // --- build once, correct many: replay the sweep from a snapshot ---
    let snap = std::env::temp_dir().join(format!("reptile-scaling-snap-{}", std::process::id()));
    let save_cfg = EngineConfig {
        topology: Topology::new(32),
        save_spectrum: Some(snap.clone()),
        ..EngineConfig::virtual_cluster(256, params)
    };
    let saved = run_virtual(&save_cfg, &dataset.reads);
    println!(
        "\nsnapshot: {} B of pruned spectra persisted at np=256",
        saved.report.snapshot_bytes_written()
    );
    println!("{:>6} {:>12} {:>10} {:>9}", "ranks", "rebuild_s", "load_s", "speedup");
    for np in [64usize, 256, 1024, 4096] {
        let cfg = EngineConfig {
            topology: Topology::new(32),
            ..EngineConfig::virtual_cluster(np, params)
        };
        let rebuilt = run_virtual(&cfg, &dataset.reads);
        let load_cfg = EngineConfig { load_spectrum: Some(snap.clone()), ..cfg };
        let loaded = run_virtual(&load_cfg, &dataset.reads);
        assert_eq!(
            loaded.corrected, rebuilt.corrected,
            "snapshot-loaded correction must be bit-identical (np={np})"
        );
        let rebuild_s = rebuilt.report.construct_secs();
        let load_s = loaded.report.construct_secs();
        println!(
            "{:>6} {:>12.2} {:>10.2} {:>8.1}x{}",
            np,
            rebuild_s,
            load_s,
            rebuild_s / load_s.max(1e-12),
            if np == 256 { "  (zero-copy)" } else { "  (re-sharded)" }
        );
    }
    std::fs::remove_dir_all(&snap).ok();
}
