//! End-to-end file pipeline: the paper's actual I/O path.
//!
//! ```text
//! cargo run --example file_pipeline
//! ```
//!
//! Writes a synthetic dataset as the (numbered FASTA, quality) file pair
//! Reptile consumes, writes a Reptile-style config file, then runs the
//! distributed engine with each rank reading its own byte-offset slice of
//! both files (Step I), and finally writes the corrected FASTA.

use genio::dataset::DatasetProfile;
use genio::{fasta, RunConfig};
use reptile::ReptileParams;
use reptile_dist::{run_distributed_files, EngineConfig, HeuristicConfig};
use std::io::Write;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("reptile-file-pipeline");
    std::fs::create_dir_all(&dir)?;
    let fasta_path = dir.join("reads.fa");
    let qual_path = dir.join("reads.qual");
    let out_path = dir.join("corrected.fa");
    let config_path = dir.join("run.config");

    // 1. synthesize and write the dataset
    let dataset = DatasetProfile::ecoli_like().scaled(4000).generate(7);
    dataset.write_files(&fasta_path, &qual_path)?;
    println!("wrote {} reads to {} (+ qualities)", dataset.reads.len(), fasta_path.display());

    // 2. write and re-load the Reptile-style config file
    let config = RunConfig {
        fasta_file: fasta_path.clone(),
        qual_file: qual_path.clone(),
        output_file: out_path.clone(),
        k: 12,
        tile_overlap: 6,
        chunk_size: 500,
        kmer_threshold: 5,
        tile_threshold: 5,
        ..RunConfig::default()
    };
    std::fs::write(&config_path, config.to_text())?;
    let config = RunConfig::load(&config_path)?;
    println!("config round-tripped through {}", config_path.display());

    // 3. distributed run, each rank reading its byte-offset slice
    let params = ReptileParams {
        k: config.k,
        tile_overlap: config.tile_overlap,
        kmer_threshold: config.kmer_threshold,
        tile_threshold: config.tile_threshold,
        q_threshold: config.q_threshold,
        max_errors_per_tile: config.max_errors_per_tile,
        max_positions_per_tile: config.max_positions_per_tile,
        max_candidates: config.max_candidates,
        canonical: config.canonical,
        ..ReptileParams::default()
    };
    let cfg = EngineConfig {
        np: 6,
        chunk_size: config.chunk_size,
        params,
        heuristics: HeuristicConfig::paper_production(),
        ..EngineConfig::new(6, params)
    };
    let out = run_distributed_files(&cfg, &config.fasta_file, &config.qual_file)?;
    println!(
        "corrected {} errors across {} ranks (construct {:.3}s, correct {:.3}s wall)",
        out.report.errors_corrected(),
        cfg.np,
        out.report.construct_secs(),
        out.report.correct_secs()
    );

    // 4. write the corrected FASTA ("outputs the reads it has corrected")
    let mut w = std::io::BufWriter::new(std::fs::File::create(&config.output_file)?);
    for read in &out.corrected {
        fasta::write_record(&mut w, read.id, &read.seq)?;
    }
    w.flush()?;
    println!("corrected reads written to {}", config.output_file.display());

    // sanity: corrected output differs from input (errors were fixed)
    let changed = out.corrected.iter().zip(&dataset.reads).filter(|(c, o)| c.seq != o.seq).count();
    println!("{changed} reads changed by correction");
    Ok(())
}
