//! Vendored offline stub of the `criterion` API subset this workspace's
//! benches use: `black_box`, `Criterion::bench_function`,
//! `benchmark_group` (with `throughput` / `sample_size`), `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible shims (see DESIGN.md
//! "External crates"). This stub does plain wall-clock timing — warm up,
//! run the closure until a small time budget is spent, print mean time
//! per iteration (plus throughput when configured) to stdout. No
//! statistics, no HTML reports, no baseline comparison; bench *numbers*
//! are indicative while bench *compilation and execution* stay faithful.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration hint used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    time_budget: Duration,
}

impl Bencher {
    fn new(time_budget: Duration) -> Bencher {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            time_budget,
        }
    }

    /// Time repeated calls of `routine` until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.time_budget || iters == u64::MAX {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:40} (no measurement — Bencher::iter never called)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let rate = |units: u64, suffix: &str| {
            format!(" ({:.3} M{suffix}/s)", units as f64 / per_iter / 1e6)
        };
        let extra = match throughput {
            Some(Throughput::Bytes(n)) => rate(n, "B"),
            Some(Throughput::Elements(n)) => rate(n, "elem"),
            None => String::new(),
        };
        println!(
            "{id:40} {:>12.3} µs/iter over {} iters{extra}",
            per_iter * 1e6,
            self.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            time_budget: Duration::from_millis(80),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.time_budget);
        f(&mut b);
        b.report(id, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("— {name} —");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the work-per-iteration hint for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.time_budget);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Finish the group (no-op beyond ending the visual block).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` invoking one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| black_box(1u64 + 1)));
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            time_budget: Duration::from_millis(2),
        };
        c.bench_function("direct", |b| b.iter(|| black_box(21u64 * 2)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        g.bench_function("in_group", |b| b.iter(|| black_box(vec![0u8; 64])));
        g.finish();
        benches();
    }
}
