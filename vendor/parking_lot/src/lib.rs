//! Vendored offline stub of the `parking_lot` API subset this workspace
//! uses (`Mutex`, `MutexGuard`, `Condvar`), implemented over `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few external crates it depends on as minimal
//! API-compatible shims (see DESIGN.md "External crates"). Differences
//! from the real parking_lot are invisible to this workspace: poisoning
//! is swallowed (parking_lot has none), and the non-poisoning `lock()` /
//! `wait(&mut guard)` signatures are preserved.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning `lock()` signature).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take the
/// guard by value (std's wait signature) behind parking_lot's
/// `&mut MutexGuard` signature.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Atomically release the guard's lock and block until notified or
    /// `timeout` elapses (parking_lot's `wait_for` signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            *started
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // no notifier: must time out and return the guard intact
        {
            let (lock, cvar) = &*pair;
            let mut g = lock.lock();
            let r = cvar.wait_for(&mut g, std::time::Duration::from_millis(5));
            assert!(r.timed_out());
            assert!(!*g);
        }
        // with a notifier: wakes before the (long) timeout
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                let r = cvar.wait_for(&mut ready, std::time::Duration::from_secs(10));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_and_into_inner() {
        let m = Mutex::new(5);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 5);
    }
}
