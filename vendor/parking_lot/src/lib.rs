//! Vendored offline stub of the `parking_lot` API subset this workspace
//! uses (`Mutex`, `MutexGuard`, `Condvar`), implemented over `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few external crates it depends on as minimal
//! API-compatible shims (see DESIGN.md "External crates"). Differences
//! from the real parking_lot are invisible to this workspace: poisoning
//! is swallowed (parking_lot has none), and the non-poisoning `lock()` /
//! `wait(&mut guard)` signatures are preserved.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning `lock()` signature).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take the
/// guard by value (std's wait signature) behind parking_lot's
/// `&mut MutexGuard` signature.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            *started
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn try_lock_and_into_inner() {
        let m = Mutex::new(5);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 5);
    }
}
