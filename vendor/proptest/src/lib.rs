//! Vendored offline stub of the `proptest` API subset this workspace
//! uses: the `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros, the [`strategy::Strategy`] trait with
//! integer-range / `any` / tuple / `Just` / `prop_map` strategies,
//! `prop::collection::vec`, `proptest::option::of`, and
//! `prop::sample::select`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible shims (see DESIGN.md
//! "External crates"). Unlike real proptest this stub does **no input
//! shrinking** and draws cases from a fixed-seed splitmix64 stream, so
//! runs are fully deterministic; a failing case prints the generated
//! inputs so it can be reproduced as a plain unit test.

#![forbid(unsafe_code)]

/// Test-case execution: configuration, error type, RNG, and the runner
/// the [`proptest!`] macro expands to.
pub mod test_runner {
    /// How many cases to run per property (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: retry with fresh inputs, not a failure.
        Reject,
        /// `prop_assert*` failed: the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic case RNG (splitmix64 over a fixed seed).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed stream used by [`run_cases`].
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x1CEB_00DA_2016_5EED,
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next uniform 128-bit word.
        pub fn next_u128(&mut self) -> u128 {
            (self.next_u64() as u128) << 64 | self.next_u64() as u128
        }
    }

    impl Default for TestRng {
        fn default() -> TestRng {
            TestRng::deterministic()
        }
    }

    /// Run `config.cases` accepted cases of `case`, panicking on the
    /// first falsified one. `case` returns the formatted inputs (for
    /// the failure report) and the case outcome.
    pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let mut rng = TestRng::deterministic();
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(config.cases).saturating_mul(16).max(256);
        while passed < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest stub: too many rejected cases ({passed} passed of {} wanted after {attempts} attempts)",
                config.cases
            );
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{passed} failed: {msg}\n  inputs: {inputs}")
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draw one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase the strategy (the [`prop_oneof!`](crate::prop_oneof)
        /// arms go through this).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { gen: Box::new(move |rng| self.generate(rng)) }
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T> {
        gen: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between strategies of one value type
    /// ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` on every generated value.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    /// Always generate clones of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128).wrapping_add(rng.next_u128() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128);
                    if span == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    (lo as u128).wrapping_add(rng.next_u128() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()`: uniform generation over a type's whole domain.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draw a uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            rng.next_u128()
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // real proptest defaults to weighting Some at 3:1
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generate `None` or `Some(inner)`, biased toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }

    /// Pick uniformly from a non-empty list of options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec` / `prop::sample::select`
    /// resolve after a prelude glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Uniform choice among strategies producing one value type. Unlike real
/// proptest the stub supports only unweighted arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs; an
/// optional `#![proptest_config(expr)]` header sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
    )*};
}

/// Assert a boolean property; on failure the case (with its inputs) is
/// reported and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal (with optional context message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&($left), &($right));
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` {}\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    ::std::format!($($fmt)+),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Assert two expressions are unequal (with optional context message).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&($left), &($right));
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}` {}\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    ::std::format!($($fmt)+),
                    __left
                ),
            ));
        }
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in 0u8..=4, c in -5i64..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn vec_and_select_and_map(
            v in prop::collection::vec(prop::sample::select(vec![1u32, 2, 3]), 2..6),
            w in prop::collection::vec(any::<u64>(), 0..4).prop_map(|x| x.len()),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
            prop_assert!(w < 4);
        }

        #[test]
        fn oneof_just_and_option(
            x in prop_oneof![Just(-1i64), 0i64..100],
            o in crate::option::of(5u32..9),
        ) {
            prop_assert!(x == -1 || (0..100).contains(&x));
            if let Some(v) = o {
                prop_assert!((5..9).contains(&v));
            }
        }

        #[test]
        fn tuples_and_assume(pair in (1usize..10, any::<bool>())) {
            prop_assume!(pair.0 != 5);
            prop_assert_ne!(pair.0, 5);
            prop_assert_eq!(pair.0, pair.0, "reflexive for {:?}", pair.1);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
