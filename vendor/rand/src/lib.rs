//! Vendored offline stub of the `rand` 0.8 API subset this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen_range` / `gen_bool` / `gen`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible shims (see DESIGN.md
//! "External crates"). The generator is splitmix64 — statistically fine
//! for synthetic-dataset generation, deterministic per seed, but a
//! *different stream* than the real `StdRng` (ChaCha12): datasets
//! generated from the same seed differ between this stub and real rand.
//! Everything in-repo only compares runs against each other, so this is
//! invisible to tests and figures.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type samplable uniformly over its whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range samplable uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniform ranges can be sampled over. A single blanket
/// `SampleRange` impl per range shape (mirroring real rand) keeps type
/// inference working for unsuffixed literals like `gen_range(0..4)`
/// used as slice indices.
pub trait UniformInt: Copy + PartialOrd {
    /// `hi - lo` in modular u64 arithmetic (correct for signed types).
    fn steps_between(lo: Self, hi: Self) -> u64;
    /// `lo + offset` in modular u64 arithmetic.
    fn forward(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn steps_between(lo: $t, hi: $t) -> u64 {
                (hi as u64).wrapping_sub(lo as u64)
            }

            #[inline]
            fn forward(lo: $t, offset: u64) -> $t {
                (lo as u64).wrapping_add(offset) as $t
            }
        }

        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = T::steps_between(self.start, self.end);
        T::forward(self.start, rng.next_u64() % span)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = T::steps_between(lo, hi);
        if span == u64::MAX {
            return T::forward(lo, rng.next_u64());
        }
        T::forward(lo, rng.next_u64() % (span + 1))
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard RNG: splitmix64 (deterministic per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn index_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
